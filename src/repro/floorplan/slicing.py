"""Slicing-floorplan construction and whitespace estimation.

Processes the partition tree produced by
:func:`repro.floorplan.partition.build_partition_tree` bottom-up:

* **Leaf nodes** become chiplet bounding boxes.  The chiplet's aspect ratio
  defaults to square (the paper sets orientation/aspect ratio at the leaves;
  a square is the area-optimal default when the true die outline is
  unknown).
* **Internal nodes** combine their two children either side-by-side
  (vertical cut) or stacked (horizontal cut), separated by the chiplet
  spacing constraint.  Whichever orientation yields the smaller bounding box
  is kept.  Any dimension mismatch between the two children becomes
  whitespace inside the bounding box — exactly the two whitespace sources
  described in Section III-D(3).

The floorplan also reports chiplet adjacencies (pairs of chiplets whose
placements abut across a spacing channel) which the packaging models use to
count silicon bridges and place NoC routers.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.floorplan.partition import PartitionNode, build_partition_tree
from repro.floorplan.rect import Rect

#: Default chiplet-to-chiplet spacing constraint in mm (Table I: 0.1–1 mm).
DEFAULT_CHIPLET_SPACING_MM = 0.5


@dataclasses.dataclass(frozen=True)
class Placement:
    """Final position of one chiplet inside the package outline."""

    name: str
    rect: Rect


@dataclasses.dataclass(frozen=True)
class FloorplanResult:
    """Output of the slicing floorplanner.

    Attributes:
        placements: Per-chiplet placement rectangles (package coordinates).
        outline: Bounding box of the whole assembly; its area is the package
            substrate / interposer area used in the packaging CFP models.
        chiplet_area_mm2: Sum of chiplet silicon areas.
        package_area_mm2: Area of the outline.
        whitespace_area_mm2: Outline area not covered by chiplets.
        whitespace_fraction: Whitespace as a fraction of the package area.
        adjacencies: Pairs of chiplet names that abut (share an interface
            across a spacing channel), with the shared edge length in mm.
    """

    placements: Tuple[Placement, ...]
    outline: Rect
    chiplet_area_mm2: float
    package_area_mm2: float
    whitespace_area_mm2: float
    whitespace_fraction: float
    adjacencies: Tuple[Tuple[str, str, float], ...]

    def placement_of(self, name: str) -> Placement:
        """Return the placement of chiplet ``name``."""
        for placement in self.placements:
            if placement.name == name:
                return placement
        raise KeyError(f"no chiplet named {name!r} in floorplan")

    def adjacency_count(self) -> int:
        """Number of abutting chiplet pairs."""
        return len(self.adjacencies)


@dataclasses.dataclass(frozen=True)
class _Block:
    """Intermediate floorplan block: a set of placed chiplets in local coords."""

    width: float
    height: float
    placements: Tuple[Placement, ...]

    @property
    def area(self) -> float:
        return self.width * self.height


class SlicingFloorplanner:
    """Builds a slicing floorplan and estimates whitespace.

    Args:
        spacing_mm: Minimum spacing between adjacent chiplets and between a
            chiplet and the combined-partition boundary (Table I: 0.1–1 mm).
        aspect_ratio: Aspect ratio applied to every chiplet bounding box
            (width / height).  1.0 (square) by default.
    """

    def __init__(
        self,
        spacing_mm: float = DEFAULT_CHIPLET_SPACING_MM,
        aspect_ratio: float = 1.0,
    ):
        if spacing_mm < 0:
            raise ValueError(f"spacing must be non-negative, got {spacing_mm}")
        if aspect_ratio <= 0:
            raise ValueError(f"aspect ratio must be positive, got {aspect_ratio}")
        self.spacing_mm = float(spacing_mm)
        self.aspect_ratio = float(aspect_ratio)

    # -- public API --------------------------------------------------------------
    def floorplan(self, chiplet_areas: Dict[str, float]) -> FloorplanResult:
        """Floorplan the chiplets and report package area and whitespace."""
        tree = build_partition_tree(chiplet_areas)
        block = self._process(tree)
        outline = Rect(0.0, 0.0, block.width, block.height)
        chiplet_area = sum(chiplet_areas.values())
        package_area = outline.area
        whitespace = max(0.0, package_area - chiplet_area)
        adjacencies = self._adjacencies(block.placements)
        return FloorplanResult(
            placements=block.placements,
            outline=outline,
            chiplet_area_mm2=chiplet_area,
            package_area_mm2=package_area,
            whitespace_area_mm2=whitespace,
            whitespace_fraction=whitespace / package_area if package_area > 0 else 0.0,
            adjacencies=adjacencies,
        )

    def package_area_mm2(self, chiplet_areas: Dict[str, float]) -> float:
        """Convenience wrapper returning only the package/interposer area."""
        return self.floorplan(chiplet_areas).package_area_mm2

    # -- tree processing -----------------------------------------------------------
    def _process(self, node: PartitionNode) -> _Block:
        if node.is_leaf:
            return self._leaf_block(node)
        assert node.left is not None and node.right is not None
        left = self._process(node.left)
        right = self._process(node.right)
        horizontal = self._combine(left, right, vertical_cut=True)
        vertical = self._combine(left, right, vertical_cut=False)
        return horizontal if horizontal.area <= vertical.area else vertical

    def _leaf_block(self, node: PartitionNode) -> _Block:
        area = node.total_area
        width = math.sqrt(area * self.aspect_ratio)
        height = area / width if width > 0 else 0.0
        placement = Placement(name=node.chiplet or "", rect=Rect(0.0, 0.0, width, height))
        return _Block(width=width, height=height, placements=(placement,))

    def _combine(self, left: _Block, right: _Block, vertical_cut: bool) -> _Block:
        """Place ``right`` next to (or above) ``left`` with the spacing gap."""
        gap = self.spacing_mm
        if vertical_cut:
            # Side by side: widths add, height is the max of the two.
            width = left.width + gap + right.width
            height = max(left.height, right.height)
            shifted = tuple(
                Placement(p.name, p.rect.translated(left.width + gap, 0.0))
                for p in right.placements
            )
        else:
            width = max(left.width, right.width)
            height = left.height + gap + right.height
            shifted = tuple(
                Placement(p.name, p.rect.translated(0.0, left.height + gap))
                for p in right.placements
            )
        return _Block(width=width, height=height, placements=left.placements + shifted)

    # -- adjacency extraction ---------------------------------------------------------
    def _adjacencies(
        self, placements: Tuple[Placement, ...]
    ) -> Tuple[Tuple[str, str, float], ...]:
        """Pairs of chiplets that face each other across a spacing channel.

        Each placement is inflated by half the spacing on every side; two
        chiplets are adjacent when their inflated outlines abut or overlap
        and the overlap of their projections on the facing axis is positive.
        """
        inflate = self.spacing_mm / 2.0 + 1e-9
        pairs: List[Tuple[str, str, float]] = []
        for a, b in itertools.combinations(placements, 2):
            ra = Rect(
                a.rect.x - inflate,
                a.rect.y - inflate,
                a.rect.width + 2 * inflate,
                a.rect.height + 2 * inflate,
            )
            rb = Rect(
                b.rect.x - inflate,
                b.rect.y - inflate,
                b.rect.width + 2 * inflate,
                b.rect.height + 2 * inflate,
            )
            if ra.overlaps(rb):
                # Overlap after inflation: the interface length is the extent
                # of the overlap along the facing (longer) direction.
                dx = min(ra.x2, rb.x2) - max(ra.x, rb.x)
                dy = min(ra.y2, rb.y2) - max(ra.y, rb.y)
                shared = max(dx, dy) if min(dx, dy) > 0 else 0.0
            else:
                shared = ra.shared_edge_length(rb)
            if shared > 0:
                names = sorted((a.name, b.name))
                pairs.append((names[0], names[1], shared))
        return tuple(sorted(pairs))


def floorplan_areas(
    chiplet_areas: Dict[str, float],
    spacing_mm: float = DEFAULT_CHIPLET_SPACING_MM,
    aspect_ratio: float = 1.0,
) -> FloorplanResult:
    """Functional shortcut: floorplan ``chiplet_areas`` with default settings."""
    planner = SlicingFloorplanner(spacing_mm=spacing_mm, aspect_ratio=aspect_ratio)
    return planner.floorplan(chiplet_areas)
