"""Slicing floorplanner for package-substrate / interposer area estimation.

Section III-D(3) of the paper: the area of the package substrate or
interposer (and therefore its carbon footprint) depends on how the chiplets
are arranged.  ECO-CHIP estimates it with a recursive bi-partitioning slicing
floorplan:

1. Chiplets are sorted by decreasing area and assigned one-by-one to the
   lighter of two partitions, producing an area-balanced two-way partition.
2. Each partition is recursively bi-partitioned until every partition holds a
   single chiplet, yielding a full binary tree whose leaves are chiplets.
3. The tree is processed bottom-up: leaves become chiplet bounding boxes,
   internal nodes combine their two children side-by-side (choosing the
   orientation that minimises the bounding-box area), adding the
   chiplet-spacing constraint and accounting for whitespace created when the
   two children have mismatched dimensions.

The resulting floorplan provides the package/interposer area, the whitespace
fraction, per-chiplet placements and the chiplet adjacency list used to place
silicon bridges and NoC routers.
"""

from repro.floorplan.partition import PartitionNode, build_partition_tree
from repro.floorplan.rect import Rect
from repro.floorplan.slicing import FloorplanResult, Placement, SlicingFloorplanner

__all__ = [
    "PartitionNode",
    "build_partition_tree",
    "Rect",
    "FloorplanResult",
    "Placement",
    "SlicingFloorplanner",
]
