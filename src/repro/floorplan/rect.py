"""Axis-aligned rectangle primitive used by the floorplanner."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle with its lower-left corner at (x, y).

    All coordinates and lengths are in millimetres.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"rectangle dimensions must be non-negative, got "
                f"{self.width} x {self.height}"
            )

    # -- derived geometry -------------------------------------------------------
    @property
    def area(self) -> float:
        """Area in mm²."""
        return self.width * self.height

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.height

    @property
    def center(self) -> "tuple[float, float]":
        """Centre point."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Width divided by height (``inf`` for a zero-height rectangle)."""
        if self.height == 0:
            return float("inf")
        return self.width / self.height

    # -- transformations ----------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy shifted by (dx, dy)."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def rotated(self) -> "Rect":
        """A copy with width and height swapped (90° rotation in place)."""
        return Rect(self.x, self.y, self.height, self.width)

    # -- relations -----------------------------------------------------------------
    def overlaps(self, other: "Rect") -> bool:
        """True if the two rectangles overlap with positive area."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def shared_edge_length(self, other: "Rect", tolerance: float = 1e-6) -> float:
        """Length of the boundary the two rectangles share (abutment).

        Two rectangles "abut" when one's edge lies within ``tolerance`` of
        the other's and their projections on the shared axis overlap.  Used
        to find chiplet pairs that can be connected with a silicon bridge.
        """
        # Vertical abutment (left/right edges touching).
        if abs(self.x2 - other.x) <= tolerance or abs(other.x2 - self.x) <= tolerance:
            low = max(self.y, other.y)
            high = min(self.y2, other.y2)
            if high > low:
                return high - low
        # Horizontal abutment (top/bottom edges touching).
        if abs(self.y2 - other.y) <= tolerance or abs(other.y2 - self.y) <= tolerance:
            low = max(self.x, other.x)
            high = min(self.x2, other.x2)
            if high > low:
                return high - low
        return 0.0

    def manhattan_distance(self, other: "Rect") -> float:
        """Manhattan distance between rectangle centres."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return abs(cx1 - cx2) + abs(cy1 - cy2)

    @staticmethod
    def bounding(rects: "list[Rect]") -> "Rect":
        """Smallest rectangle covering every rectangle in ``rects``."""
        if not rects:
            return Rect(0.0, 0.0, 0.0, 0.0)
        x1 = min(r.x for r in rects)
        y1 = min(r.y for r in rects)
        x2 = max(r.x2 for r in rects)
        y2 = max(r.y2 for r in rects)
        return Rect(x1, y1, x2 - x1, y2 - y1)
