"""Recursive bi-partitioning of chiplets into a full binary tree.

The paper's whitespace-estimation algorithm builds a slicing floorplan from a
recursive bi-partitioning of the chiplets: chiplets are sorted in decreasing
order of area and assigned greedily to the partition with the lesser total
weight (area), producing an area-balanced two-way split; each side is then
partitioned again until every partition holds exactly one chiplet.  The
result is a full binary tree whose leaves are chiplets and whose internal
nodes are partitions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass
class PartitionNode:
    """A node of the partition tree.

    Leaf nodes carry a single chiplet name; internal nodes carry two
    children.  ``total_area`` is the sum of the chiplet areas below the node
    (before any whitespace is added).
    """

    chiplet: Optional[str] = None
    left: Optional["PartitionNode"] = None
    right: Optional["PartitionNode"] = None
    total_area: float = 0.0

    @property
    def is_leaf(self) -> bool:
        """True for single-chiplet nodes."""
        return self.chiplet is not None

    def leaves(self) -> List[str]:
        """Chiplet names under this node, left to right."""
        if self.is_leaf:
            return [self.chiplet]  # type: ignore[list-item]
        names: List[str] = []
        if self.left is not None:
            names.extend(self.left.leaves())
        if self.right is not None:
            names.extend(self.right.leaves())
        return names

    def depth(self) -> int:
        """Height of the subtree rooted at this node (leaf = 1)."""
        if self.is_leaf:
            return 1
        left_depth = self.left.depth() if self.left is not None else 0
        right_depth = self.right.depth() if self.right is not None else 0
        return 1 + max(left_depth, right_depth)

    def internal_nodes(self) -> int:
        """Number of internal (partition) nodes in the subtree."""
        if self.is_leaf:
            return 0
        count = 1
        if self.left is not None:
            count += self.left.internal_nodes()
        if self.right is not None:
            count += self.right.internal_nodes()
        return count


def _balanced_split(areas: Sequence[Tuple[str, float]]) -> Tuple[List[Tuple[str, float]], List[Tuple[str, float]]]:
    """Greedy area-balanced two-way split.

    Chiplets (already sorted by decreasing area) are assigned one by one to
    the side with the smaller accumulated area.
    """
    left: List[Tuple[str, float]] = []
    right: List[Tuple[str, float]] = []
    left_weight = 0.0
    right_weight = 0.0
    for name, area in areas:
        if left_weight <= right_weight:
            left.append((name, area))
            left_weight += area
        else:
            right.append((name, area))
            right_weight += area
    return left, right


def build_partition_tree(chiplet_areas: Dict[str, float]) -> PartitionNode:
    """Build the recursive bi-partitioning tree for ``chiplet_areas``.

    Args:
        chiplet_areas: Mapping of chiplet name to area in mm².  Must be
            non-empty and every area must be positive.

    Returns:
        The root :class:`PartitionNode` of a full binary tree whose leaves
        are exactly the given chiplets.
    """
    if not chiplet_areas:
        raise ValueError("at least one chiplet is required")
    for name, area in chiplet_areas.items():
        if area <= 0:
            raise ValueError(f"chiplet {name!r} has non-positive area {area}")

    ordered = sorted(chiplet_areas.items(), key=lambda item: (-item[1], item[0]))
    return _build(ordered)


def _build(ordered: Sequence[Tuple[str, float]]) -> PartitionNode:
    if len(ordered) == 1:
        name, area = ordered[0]
        return PartitionNode(chiplet=name, total_area=area)
    left_items, right_items = _balanced_split(ordered)
    # The greedy split always leaves both sides non-empty for len >= 2, but
    # guard against degenerate weights anyway.
    if not left_items or not right_items:
        midpoint = max(1, len(ordered) // 2)
        left_items, right_items = list(ordered[:midpoint]), list(ordered[midpoint:])
    left = _build(left_items)
    right = _build(right_items)
    return PartitionNode(
        left=left,
        right=right,
        total_area=left.total_area + right.total_area,
    )
