"""ECO-CHIP reproduction: carbon-footprint estimation of chiplet-based systems.

This library reproduces "ECO-CHIP: Estimation of Carbon Footprint of
Chiplet-based Architectures for Sustainable VLSI" (HPCA 2024).  The
documented public entry point is the :class:`Session` facade, which unifies
single-system estimation, declarative scenario sweeps and design-space
exploration behind one object::

    from repro import Session

    session = Session(jobs=4, backend="batch")
    report = session.estimate("ga102-3chiplet")
    result = session.sweep({"testcases": ["ga102-3chiplet"],
                            "wafer_diameter_mm": [300, 450]})

Any estimator knob is sweepable through the typed axis registry
(:mod:`repro.axes`): built-in axes cover wafer diameter, defect density,
router spec and operating conditions, and :func:`register_axis` plugs in
out-of-tree knobs.  The lower-level building blocks stay re-exported here::

    from repro import Chiplet, ChipletSystem, EcoChip, OperatingSpec
    from repro.packaging import RDLFanoutSpec

See :mod:`repro.core` for the estimator, :mod:`repro.testcases` for the
paper's industry testcases and :mod:`repro.cli` for the command-line tool.
"""

from repro.axes import Axis, axis_names, register_axis
from repro.api import ExploreResult, Session, SweepResult
from repro.search import (
    SearchConstraint,
    SearchObjective,
    SearchResult,
    SearchSpec,
    register_strategy,
    strategy_names,
)
from repro.core.chiplet import Chiplet
from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.results import ChipletCarbonReport, SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.operational.energy import OperatingSpec
from repro.plugins import PLUGIN_API_VERSION
from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, TechnologyNode, TechnologyTable
from repro.technology.scaling import DesignType

__version__ = "1.1.0"

__all__ = [
    "Axis",
    "axis_names",
    "register_axis",
    "Session",
    "SweepResult",
    "ExploreResult",
    "SearchConstraint",
    "SearchObjective",
    "SearchResult",
    "SearchSpec",
    "register_strategy",
    "strategy_names",
    "PLUGIN_API_VERSION",
    "Chiplet",
    "ChipletSystem",
    "EcoChip",
    "EstimatorConfig",
    "ChipletCarbonReport",
    "SystemCarbonReport",
    "OperatingSpec",
    "DEFAULT_TECHNOLOGY_TABLE",
    "TechnologyNode",
    "TechnologyTable",
    "DesignType",
    "__version__",
]
