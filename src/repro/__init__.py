"""ECO-CHIP reproduction: carbon-footprint estimation of chiplet-based systems.

This library reproduces "ECO-CHIP: Estimation of Carbon Footprint of
Chiplet-based Architectures for Sustainable VLSI" (HPCA 2024).  The most
common entry points are re-exported here::

    from repro import Chiplet, ChipletSystem, EcoChip, OperatingSpec
    from repro.packaging import RDLFanoutSpec

See :mod:`repro.core` for the estimator, :mod:`repro.testcases` for the
paper's industry testcases and :mod:`repro.cli` for the command-line tool.
"""

from repro.core.chiplet import Chiplet
from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.results import ChipletCarbonReport, SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.operational.energy import OperatingSpec
from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, TechnologyNode, TechnologyTable
from repro.technology.scaling import DesignType

__version__ = "1.0.0"

__all__ = [
    "Chiplet",
    "ChipletSystem",
    "EcoChip",
    "EstimatorConfig",
    "ChipletCarbonReport",
    "SystemCarbonReport",
    "OperatingSpec",
    "DEFAULT_TECHNOLOGY_TABLE",
    "TechnologyNode",
    "TechnologyTable",
    "DesignType",
    "__version__",
]
