"""Structured errors shared by the HTTP API and the CLI.

Every failure the server reports — and every failure ``eco-chip sweep`` /
``eco-chip serve`` print — goes through one vocabulary: a short machine
error ``code`` plus a human message.  Over HTTP that renders as a JSON
body (:meth:`ServeError.payload`) with the matching status; on a terminal
it renders as one line (:func:`format_error_text`), so scripts can match
the same codes in both places.

Exit codes split the two failure classes the CLI can hit:

* :data:`EXIT_SPEC_ERROR` (2) — the request itself is wrong (bad spec,
  unknown preset/axis/format, invalid flag values); re-running without
  changing it cannot succeed.
* :data:`EXIT_RUNTIME_ERROR` (3) — the request was valid but evaluation
  or I/O failed at run time (disk full, port in use, ...); a retry may
  succeed.

This module imports nothing from the rest of the package so the CLI can
use it without paying for the server stack.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Process exit code for spec/argument validation failures.
EXIT_SPEC_ERROR = 2
#: Process exit code for runtime (evaluation / I/O) failures.
EXIT_RUNTIME_ERROR = 3


def format_error_text(code: str, message: str) -> str:
    """One-line terminal rendering of a structured error.

    Keeps the ``error:`` prefix long used by the CLI, with the machine
    code in brackets: ``error: [invalid-spec] unknown sweep preset ...``.
    """
    return f"error: [{code}] {message}"


class ServeError(Exception):
    """Base of all structured service errors.

    Attributes:
        code: Short machine-readable error code (stable API).
        http_status: Status the HTTP layer responds with.
        exit_code: Exit code the CLI maps this error class to.
        retry_after: Seconds after which a retry may succeed; rendered as
            a ``Retry-After`` header (and ``retry_after_s`` in the JSON
            body) when set.  Error classes describing transient pressure
            set :attr:`default_retry_after`.
    """

    code = "internal"
    http_status = 500
    exit_code = EXIT_RUNTIME_ERROR
    #: Class-level retry hint used when the constructor gets none.
    default_retry_after: Optional[float] = None

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.message = message
        self.retry_after = (
            retry_after if retry_after is not None else self.default_retry_after
        )

    def payload(self) -> Dict[str, Any]:
        """JSON body of the HTTP error response."""
        body: Dict[str, Any] = {"error": {"code": self.code, "message": self.message}}
        if self.retry_after is not None:
            body["error"]["retry_after_s"] = self.retry_after
        return body

    def text(self) -> str:
        """Terminal rendering (same code and message as :meth:`payload`)."""
        return format_error_text(self.code, self.message)


class SpecError(ServeError):
    """The submitted sweep spec (or CLI arguments) failed validation."""

    code = "invalid-spec"
    http_status = 400
    exit_code = EXIT_SPEC_ERROR


class NotFoundError(ServeError):
    """No job with the requested id."""

    code = "not-found"
    http_status = 404


class QuotaExceededError(ServeError):
    """The client's scenario-count quota cannot cover this submission."""

    code = "quota-exceeded"
    http_status = 429
    default_retry_after = 5.0


class QueueFullError(ServeError):
    """The bounded job queue is full; retry after jobs drain."""

    code = "queue-full"
    http_status = 503
    default_retry_after = 1.0


class CircuitOpenError(ServeError):
    """The circuit breaker for this job class is open (recent failures)."""

    code = "circuit-open"
    http_status = 503


class JobStateError(ServeError):
    """The job is in a state that does not allow the requested transition."""

    code = "conflict"
    http_status = 409


class RuntimeJobError(ServeError):
    """A job failed while evaluating (captured in the job's error field)."""

    code = "runtime"
    http_status = 500
