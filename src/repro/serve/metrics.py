"""Counters and per-stage latency aggregates behind ``/v1/metrics``.

Deliberately tiny: monotonically increasing named counters plus
``(count, total, max)`` latency aggregates per stage — enough for a
scrape-style endpoint without growing a metrics dependency.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["Metrics"]


class Metrics:
    """Thread-safe named counters and stage-latency aggregates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        # stage -> [count, total_seconds, max_seconds]
        self._latency: Dict[str, list] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for ``stage``."""
        with self._lock:
            entry = self._latency.setdefault(stage, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += seconds
            entry[2] = max(entry[2], seconds)

    def snapshot(self) -> Dict[str, object]:
        """Counters plus derived mean/max latency per stage."""
        with self._lock:
            counters = dict(self._counters)
            latency = {
                stage: {
                    "count": count,
                    "total_s": total,
                    "mean_s": (total / count) if count else 0.0,
                    "max_s": peak,
                }
                for stage, (count, total, peak) in self._latency.items()
            }
        return {"counters": counters, "latency": latency}
