"""Job queue, worker pool and crash-safe job persistence.

A :class:`JobManager` owns a bounded queue of sweep jobs, a pool of
worker threads evaluating them through :class:`repro.api.Session`, and a
store directory holding one metadata file (``<id>.json``) plus one
streaming record store (``<id>.jsonl``) per job.

Lifecycle: ``queued -> running -> done | partial | failed | cancelled``
(``partial``: the sweep completed but contained per-scenario error
records — see :mod:`repro.resilience`).  Every
transition is persisted atomically, and record stores are only ever
appended whole lines (``repro.sweep.store``), so killing the server at
any instant leaves a state a restarted manager can adopt: ``recover()``
re-enqueues unfinished jobs with ``resume=True`` and they complete from
their store with no duplicate or torn rows.

Cancellation and shutdown interrupt *between* records — the engine
appends each record to the store before invoking the progress callback
that raises — so an interrupted store is always a valid prefix of the
full sweep.
"""

from __future__ import annotations

import json
import logging
import os
import queue
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api import Session
from repro.core.estimator import EstimatorConfig
from repro.resilience import ChaosPlan, ResiliencePolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache, SharedCompileCache
from repro.serve.errors import (
    JobStateError,
    NotFoundError,
    QueueFullError,
    SpecError,
)
from repro.serve.metrics import Metrics
from repro.serve.quota import QuotaTracker
from repro.sweep.spec import SweepSpec
from repro.technology.nodes import TechnologyTable

__all__ = ["Job", "JobManager", "JOB_STATES", "TERMINAL_STATES"]

logger = logging.getLogger(__name__)

#: Job lifecycle states (``partial``: completed with error records).
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "partial", "failed", "cancelled")

_STOP = object()  # worker shutdown sentinel


class _JobCancelled(Exception):
    """Raised inside the progress callback when the job's cancel flag is set."""


class _JobInterrupted(Exception):
    """Raised inside the progress callback on manager shutdown (drain=False)."""


class Job:
    """One submitted sweep: spec, lifecycle state and store paths."""

    def __init__(
        self,
        job_id: str,
        client: str,
        payload: Mapping[str, Any],
        spec: SweepSpec,
        store_path: Path,
        submitted_at: float,
    ):
        self.id = job_id
        self.client = client
        self.payload = dict(payload)
        self.spec = spec
        self.store_path = store_path
        self.scenario_count = spec.count()
        self.state = "queued"
        self.done = 0
        self.error: Optional[Dict[str, str]] = None
        #: Per-scenario error summary of a ``partial`` job
        #: (``{"count": ..., "retried": ..., "codes": {code: n}}``).
        self.errors: Optional[Dict[str, Any]] = None
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cached = False
        self.elapsed_s: Optional[float] = None
        #: Recovered jobs resume from their store instead of truncating it.
        self.resume = False
        self.cancel_event = threading.Event()
        self._quota_released = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used both for persistence and API responses."""
        return {
            "id": self.id,
            "client": self.client,
            "state": self.state,
            "scenarios": self.scenario_count,
            "done": self.done,
            "error": self.error,
            "errors": self.errors,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "spec": self.payload,
        }


class JobManager:
    """Bounded job queue + worker pool + persistence, behind the HTTP API.

    Args:
        store_dir: Directory for per-job metadata and record stores.
        workers: Worker threads evaluating jobs concurrently.
        queue_size: Bound of the pending-job queue; a full queue rejects
            submissions with 503 (:class:`QueueFullError`).
        backend: Sweep backend jobs run on (default ``"batch"``: the
            steady-state fast path the server exists to share).
        jobs: Worker *processes* per sweep (``1`` keeps evaluation
            in-process, which is what lets the compile cache be shared).
        config: Estimator configuration all jobs evaluate under.
        table: Technology table override.
        include_cost: Add ``cost_usd`` to records.
        quota: Optional per-client scenario budget.
        metrics: Metrics sink (created when omitted).
        result_cache: Session-level result cache (created when omitted).
        compile_cache: Shared compiled-template cache (created when the
            backend/jobs combination supports it, i.e. batch + in-process).
        compile_cache_dir: Directory for the persistent on-disk compile
            cache (``--compile-cache`` /``ECO_CHIP_COMPILE_CACHE``).
            Mounted under the auto-created :class:`SharedCompileCache`
            so warm templates survive server restarts; ignored when an
            explicit ``compile_cache`` instance is passed or the
            backend/jobs combination compiles no shared templates.
        resilience: :class:`~repro.resilience.ResiliencePolicy` jobs run
            under.  Defaults to containment (``on_error="record"``, no
            retries): a scenario that raises becomes one error record and
            the job finishes ``partial`` instead of ``failed``.  Pass
            ``False`` for the historical fail-fast behaviour.
        chaos: Optional :class:`~repro.resilience.ChaosPlan` injected into
            every job's sweep (chaos tests only).
        breaker: Per-packaging-type :class:`CircuitBreaker`.  ``None``
            creates one with default thresholds; pass ``False`` to
            disable, or a configured instance.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        *,
        workers: int = 2,
        queue_size: int = 32,
        backend: str = "batch",
        jobs: int = 1,
        config: Optional[EstimatorConfig] = None,
        table: Optional[TechnologyTable] = None,
        include_cost: bool = True,
        quota: Optional[QuotaTracker] = None,
        metrics: Optional[Metrics] = None,
        result_cache: Optional[ResultCache] = None,
        compile_cache: Optional[SharedCompileCache] = None,
        compile_cache_dir: Optional[Union[str, Path]] = None,
        resilience: Union[ResiliencePolicy, None, bool] = None,
        chaos: Optional[ChaosPlan] = None,
        breaker: Union[CircuitBreaker, None, bool] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.backend = backend
        self.jobs = jobs
        self.config = config
        self.table = table
        self.include_cost = include_cost
        self.quota = quota
        self.metrics = metrics if metrics is not None else Metrics()
        if resilience is False:
            self.resilience: Optional[ResiliencePolicy] = None
        elif resilience is None or resilience is True:
            self.resilience = ResiliencePolicy()
        else:
            self.resilience = resilience
        self.chaos = chaos
        if breaker is False:
            self.breaker: Optional[CircuitBreaker] = None
        elif breaker is None or breaker is True:
            self.breaker = CircuitBreaker(metrics=self.metrics)
        else:
            self.breaker = breaker
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        if compile_cache is None and backend == "batch" and jobs == 1:
            compile_cache = SharedCompileCache(
                config=config,
                table=table,
                include_cost=include_cost,
                persistent_cache=compile_cache_dir,
            )
        self.compile_cache = compile_cache
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._abort = threading.Event()
        self._closed = False
        self._threads: List[threading.Thread] = []

    # -- lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker pool, then adopt persisted jobs (resumable)."""
        if self._threads:
            raise RuntimeError("manager already started")
        self._threads = [
            threading.Thread(target=self._worker, name=f"sweep-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self.recover()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool.

        ``drain=True`` finishes every queued and running job first; with a
        ``timeout`` that is a bounded *grace period* — jobs still running
        when it expires are interrupted at their next record boundary and
        persisted as ``queued`` (exactly the ``drain=False`` outcome), so
        shutdown always terminates and never loses work.
        ``drain=False`` interrupts running jobs at their next record
        boundary and leaves them — and everything still queued — persisted
        as ``queued``, so a restarted manager resumes them from their
        stores.
        """
        self._closed = True
        if not drain:
            self._abort.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        if drain and timeout is not None:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.monotonic()))
            if any(thread.is_alive() for thread in self._threads):
                # Grace expired: escalate to interrupt-and-persist.
                logger.warning(
                    "shutdown grace period (%.1fs) expired; interrupting "
                    "running jobs at their next record boundary",
                    timeout,
                )
                self._abort.set()
        for thread in self._threads:
            thread.join(timeout)

    # -- submission / queries ---------------------------------------------------------
    def submit(self, payload: Any, client: str = "anonymous") -> Job:
        """Validate, persist and enqueue one sweep job.

        Raises:
            SpecError: the payload is not a valid sweep spec.
            CircuitOpenError: a packaging type in the spec has a tripped
                circuit breaker (recent repeated failures).
            QuotaExceededError: the client's scenario budget is exhausted.
            QueueFullError: the bounded queue has no room.
            JobStateError: the manager is shutting down.
        """
        if self._closed:
            raise JobStateError("server is shutting down; not accepting jobs")
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"sweep payload must be a JSON object (a sweep spec, or "
                f"{{'spec': ...}}), got {type(payload).__name__}"
            )
        body = dict(payload)
        spec_dict = body.get("spec", body)
        if not isinstance(spec_dict, Mapping):
            raise SpecError("'spec' must be a JSON object")
        spec_dict = dict(spec_dict)
        try:
            spec = SweepSpec.from_dict(spec_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(str(exc)) from exc
        if spec.count() == 0:
            raise SpecError("the spec expands into zero scenarios")
        if self.breaker is not None:
            for key in self._breaker_keys(spec):
                self.breaker.check(key)
        if self.quota is not None:
            self.quota.reserve(client, spec.count())
        job_id = uuid.uuid4().hex[:12]
        job = Job(
            job_id,
            client,
            spec_dict,
            spec,
            self.store_dir / f"{job_id}.jsonl",
            time.time(),
        )
        with self._lock:
            self._jobs[job.id] = job
        self._persist(job)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self._release_quota(job)
                self._jobs.pop(job.id, None)
            self._meta_path(job).unlink(missing_ok=True)
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} pending); retry "
                f"after jobs drain"
            ) from None
        self.metrics.increment("jobs_submitted")
        return job

    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` (raises :class:`NotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise NotFoundError(f"no sweep job with id {job_id!r}")
        return job

    def list_jobs(self) -> List[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job.

        A queued job is finalised immediately; a running one stops at its
        next record boundary (its store stays a valid prefix).
        """
        job = self.get(job_id)
        finalize = False
        with self._lock:
            if job.state in TERMINAL_STATES:
                raise JobStateError(f"job {job_id} is already {job.state}")
            job.cancel_event.set()
            if job.state == "queued":
                finalize = True
        if finalize:
            self._finish(job, "cancelled")
        return job

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` payload."""
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        base = self.metrics.snapshot()
        payload: Dict[str, Any] = {
            "jobs": {
                **{state: states.count(state) for state in JOB_STATES},
                "submitted_total": base["counters"].get("jobs_submitted", 0),
            },
            "queue_depth": self._queue.qsize(),
            "workers": self.workers,
            "counters": base["counters"],
            "latency": base["latency"],
            "result_cache": self.result_cache.stats(),
        }
        if self.compile_cache is not None:
            payload["template_cache"] = self.compile_cache.stats()
        if self.quota is not None:
            payload["quota"] = self.quota.snapshot()
        if self.breaker is not None:
            payload["breaker"] = self.breaker.snapshot()
        return payload

    # -- recovery ---------------------------------------------------------------------
    def recover(self) -> List[Job]:
        """Adopt jobs persisted by a previous process.

        Terminal jobs are loaded for status/result queries; unfinished
        ones (``queued``/``running`` at crash time) are re-enqueued with
        ``resume=True`` so evaluation continues from their record store.
        """
        adopted: List[Job] = []
        for meta_path in sorted(self.store_dir.glob("*.json")):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except OSError:
                continue
            except json.JSONDecodeError as exc:
                # Corrupt / torn metadata (e.g. a crash mid-write outside
                # the atomic-rename path): quarantine it so it is neither
                # re-parsed on every restart nor silently deleted.
                quarantine = meta_path.with_name(meta_path.name + ".corrupt")
                try:
                    os.replace(meta_path, quarantine)
                except OSError:
                    continue
                logger.warning(
                    "quarantined corrupt job metadata %s -> %s (%s)",
                    meta_path.name,
                    quarantine.name,
                    exc,
                )
                self.metrics.increment("jobs_quarantined")
                continue
            if not isinstance(meta, dict) or "id" not in meta:
                continue
            job_id = str(meta["id"])
            with self._lock:
                if job_id in self._jobs:
                    continue
            spec_dict = meta.get("spec") or {}
            try:
                spec = SweepSpec.from_dict(dict(spec_dict))
            except (KeyError, TypeError, ValueError):
                continue  # foreign or incompatible metadata: leave it alone
            job = Job(
                job_id,
                str(meta.get("client", "anonymous")),
                spec_dict,
                spec,
                self.store_dir / f"{job_id}.jsonl",
                float(meta.get("submitted_at") or time.time()),
            )
            job.state = str(meta.get("state", "queued"))
            job.done = int(meta.get("done") or 0)
            job.error = meta.get("error")
            job.errors = meta.get("errors")
            job.cached = bool(meta.get("cached", False))
            job.elapsed_s = meta.get("elapsed_s")
            job.started_at = meta.get("started_at")
            job.finished_at = meta.get("finished_at")
            with self._lock:
                self._jobs[job.id] = job
            if job.state not in TERMINAL_STATES:
                job.state = "queued"
                job.resume = True
                job._quota_released = False
                if self.quota is not None:
                    # The budget was granted before the crash; re-charge
                    # without re-checking so recovery can never be rejected.
                    self.quota.reserve(job.client, job.scenario_count, force=True)
                self._persist(job)
                self._queue.put(job)  # workers are already draining
                self.metrics.increment("jobs_recovered")
            adopted.append(job)
        return adopted

    # -- internals --------------------------------------------------------------------
    @staticmethod
    def _breaker_keys(spec: SweepSpec) -> List[str]:
        """Circuit-breaker keys of a spec: its packaging types.

        A spec sweeping no packaging axis runs each testcase's baseline
        packaging; those jobs share the ``"(base)"`` key.
        """
        keys = sorted(
            {str(entry.get("type", "?")) for entry in spec.packaging}
        )
        return keys or ["(base)"]

    def _meta_path(self, job: Job) -> Path:
        return self.store_dir / f"{job.id}.json"

    def _persist(self, job: Job) -> None:
        """Atomically write the job's metadata (tmp + rename)."""
        meta_path = self._meta_path(job)
        tmp_path = meta_path.with_name(meta_path.name + ".tmp")
        tmp_path.write_text(
            json.dumps(job.to_dict(), sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp_path, meta_path)

    def _release_quota(self, job: Job) -> None:
        if self.quota is not None and not job._quota_released:
            self.quota.release(job.client, job.scenario_count)
            job._quota_released = True

    def _finish(self, job: Job, state: str) -> None:
        with self._lock:
            job.state = state
            job.finished_at = time.time()
            self._release_quota(job)
        self._persist(job)
        self.metrics.increment(f"jobs_{state}")

    def _session(self) -> Session:
        return Session(
            self.config,
            table=self.table,
            jobs=self.jobs,
            backend=self.backend,
            include_cost=self.include_cost,
            result_cache=self.result_cache,
            batch_estimator=(
                self.compile_cache.estimator if self.compile_cache is not None else None
            ),
            resilience=self.resilience,
            chaos=self.chaos,
        )

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            job: Job = item
            if job.state != "queued":
                continue  # cancelled while queued
            if self._abort.is_set():
                # Shutdown without drain: leave it persisted as queued so a
                # restarted manager re-enqueues it.
                self._persist(job)
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.state != "queued":
                return
            job.state = "running"
            job.started_at = time.time()
        self.metrics.observe("queue_wait", job.started_at - job.submitted_at)
        self._persist(job)

        total_count = job.scenario_count
        cancel_event = job.cancel_event
        abort = self._abort

        def progress(done: int, total: int) -> None:
            # The engine appends each record to the store *before* this
            # callback, so raising here interrupts cleanly between records.
            job.done = total_count - total + done
            if cancel_event.is_set():
                raise _JobCancelled()
            if abort.is_set():
                raise _JobInterrupted()

        start = time.perf_counter()
        try:
            result = self._session().sweep(
                job.spec,
                out=job.store_path,
                resume=job.store_path.exists(),
                progress=progress,
                collect_records=False,
            )
        except _JobCancelled:
            self._finish(job, "cancelled")
        except _JobInterrupted:
            with self._lock:
                job.state = "queued"
            self._persist(job)
        except Exception as exc:  # noqa: BLE001 - captured into the job record
            job.error = {
                "code": "runtime",
                "message": f"{type(exc).__name__}: {exc}",
            }
            self._finish(job, "failed")
            self._charge_breaker(job, success=False)
        else:
            job.done = total_count
            job.cached = result.summary.cached
            job.elapsed_s = result.summary.elapsed_s
            self.metrics.observe("run", time.perf_counter() - start)
            if result.summary.cached:
                self.metrics.increment("sweeps_served_from_cache")
            else:
                self.metrics.increment(
                    "scenarios_evaluated", result.summary.scenario_count
                )
            summary = result.summary
            retried = getattr(summary, "retry_count", 0)
            if retried:
                self.metrics.increment("scenarios_retried", retried)
            if getattr(summary, "error_count", 0):
                # Completed, but some scenarios yielded error records:
                # terminal ``partial`` with a per-code error summary.
                job.errors = {
                    "count": summary.error_count,
                    "retried": retried,
                    "codes": dict(summary.error_codes),
                }
                self.metrics.increment("scenarios_failed", summary.error_count)
                self._finish(job, "partial")
                self._charge_breaker(job, success=False)
            else:
                self._finish(job, "done")
                self._charge_breaker(job, success=True)

    def _charge_breaker(self, job: Job, success: bool) -> None:
        if self.breaker is None:
            return
        for key in self._breaker_keys(job.spec):
            if success:
                self.breaker.record_success(key)
            else:
                self.breaker.record_failure(key)
