"""``repro.serve`` — sweep-as-a-service over :class:`repro.api.Session`.

A stdlib-only HTTP JSON job server: submit SweepSpec-shaped jobs, poll
status, stream crash-safe JSONL results, cancel, and scrape metrics —
with process-wide compiled-template and result caches so repeat traffic
is (nearly) free.  See :mod:`repro.serve.app` for the endpoint table and
``eco-chip serve`` for the CLI entry point.

Submodules are imported lazily so lightweight users (e.g. the CLI's
error-code vocabulary in :mod:`repro.serve.errors`) do not pay for the
estimator stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "CircuitBreaker",
    "JobManager",
    "Metrics",
    "QuotaTracker",
    "ResultCache",
    "ServeError",
    "ServeServer",
    "SharedCompileCache",
    "create_server",
]

#: attribute -> defining submodule, resolved on first access.
_EXPORTS = {
    "CircuitBreaker": "repro.serve.breaker",
    "JobManager": "repro.serve.jobs",
    "Metrics": "repro.serve.metrics",
    "QuotaTracker": "repro.serve.quota",
    "ResultCache": "repro.serve.cache",
    "ServeError": "repro.serve.errors",
    "ServeServer": "repro.serve.app",
    "SharedCompileCache": "repro.serve.cache",
    "create_server": "repro.serve.app",
}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeServer, create_server
    from repro.serve.breaker import CircuitBreaker
    from repro.serve.cache import ResultCache, SharedCompileCache
    from repro.serve.errors import ServeError
    from repro.serve.jobs import JobManager
    from repro.serve.metrics import Metrics
    from repro.serve.quota import QuotaTracker


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
