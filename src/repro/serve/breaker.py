"""Per-key circuit breaker protecting the job queue from repeat failures.

A sweep that keeps failing (a broken plugin for one packaging type, a
corrupt technology override) would otherwise burn worker time on every
resubmission.  The :class:`CircuitBreaker` counts *consecutive* failures
per key — the job manager keys it by packaging type — and once the
threshold trips, rejects further submissions for that key with
:class:`~repro.serve.errors.CircuitOpenError` (HTTP 503 + ``Retry-After``)
until a cooldown elapses.  After the cooldown the breaker goes
*half-open*: exactly one trial job is admitted; its success closes the
circuit, its failure reopens it for another full cooldown.

States per key: ``closed`` (normal) -> ``open`` (rejecting) ->
``half-open`` (one probe) -> ``closed`` | ``open``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.serve.errors import CircuitOpenError
from repro.serve.metrics import Metrics

__all__ = ["CircuitBreaker"]


class _State:
    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probing = False


class CircuitBreaker:
    """Consecutive-failure circuit breaker, keyed by string.

    Args:
        threshold: Consecutive failures that open a key's circuit.
        cooldown_s: Seconds an open circuit rejects before half-opening.
        clock: Monotonic time source (injectable for tests).
        metrics: Optional sink; transitions to open increment
            ``breaker_open_total``.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[Metrics] = None,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._states: Dict[str, _State] = {}

    def _state(self, key: str) -> _State:
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _State()
        return state

    def check(self, key: str) -> None:
        """Admit or reject a submission for ``key``.

        Raises:
            CircuitOpenError: the circuit is open and the cooldown has
                not elapsed (``retry_after`` carries the remainder), or a
                half-open probe is already in flight.
        """
        with self._lock:
            state = self._states.get(key)
            if state is None or state.opened_at is None:
                return
            remaining = state.opened_at + self.cooldown_s - self._clock()
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit for {key!r} is open after {state.failures} "
                    f"consecutive failures; retry in {remaining:.1f}s",
                    retry_after=remaining,
                )
            if state.probing:
                raise CircuitOpenError(
                    f"circuit for {key!r} is half-open with a trial job in "
                    f"flight; retry after it finishes",
                    retry_after=self.cooldown_s,
                )
            state.probing = True  # admit exactly one probe

    def record_success(self, key: str) -> None:
        """A job for ``key`` finished cleanly; close its circuit."""
        with self._lock:
            state = self._states.get(key)
            if state is None:
                return
            state.failures = 0
            state.opened_at = None
            state.probing = False

    def record_failure(self, key: str) -> None:
        """A job for ``key`` failed; maybe open (or reopen) its circuit."""
        with self._lock:
            state = self._state(key)
            state.failures += 1
            reopen = state.probing  # failed probe: straight back to open
            state.probing = False
            if state.opened_at is None and (
                reopen or state.failures >= self.threshold
            ):
                state.opened_at = self._clock()
                if self._metrics is not None:
                    self._metrics.increment("breaker_open_total")
            elif reopen:
                state.opened_at = self._clock()
                if self._metrics is not None:
                    self._metrics.increment("breaker_open_total")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-key state for the metrics endpoint."""
        now = self._clock()
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for key, state in self._states.items():
                if state.opened_at is None:
                    label = "closed"
                elif state.probing:
                    label = "half-open"
                elif state.opened_at + self.cooldown_s <= now:
                    label = "half-open"
                else:
                    label = "open"
                out[key] = {"state": label, "failures": state.failures}
        return out
