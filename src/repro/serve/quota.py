"""Per-client scenario-count quotas.

A sweep submission costs its scenario count (``SweepSpec.count()``,
computed without expanding the grid).  Each client — identified by the
``X-Client-Id`` request header, defaulting to ``"anonymous"`` — may hold
at most ``max_scenarios`` scenarios in flight (queued + running); the
budget is released when a job reaches a terminal state.  A submission
that does not fit raises :class:`~repro.serve.errors.QuotaExceededError`,
which the HTTP layer maps to ``429 Too Many Requests``.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.serve.errors import QuotaExceededError

__all__ = ["QuotaTracker"]


class QuotaTracker:
    """Tracks in-flight scenario counts per client id.

    Args:
        max_scenarios: In-flight scenario budget per client.
    """

    def __init__(self, max_scenarios: int):
        if max_scenarios < 1:
            raise ValueError(f"max_scenarios must be >= 1, got {max_scenarios}")
        self.max_scenarios = max_scenarios
        self._lock = threading.Lock()
        self._used: Dict[str, int] = {}
        self.rejections = 0

    def reserve(self, client: str, count: int, force: bool = False) -> None:
        """Charge ``count`` scenarios to ``client`` or raise 429.

        ``force=True`` skips the budget check — used when re-adopting
        persisted jobs after a restart, where the budget was already
        granted before the crash.
        """
        with self._lock:
            used = self._used.get(client, 0)
            if not force and used + count > self.max_scenarios:
                self.rejections += 1
                raise QuotaExceededError(
                    f"client {client!r} quota exceeded: {count} scenarios "
                    f"requested, {self.max_scenarios - used} of "
                    f"{self.max_scenarios} available (retry after running "
                    f"jobs finish)"
                )
            self._used[client] = used + count

    def release(self, client: str, count: int) -> None:
        """Return ``count`` scenarios to ``client``'s budget."""
        with self._lock:
            remaining = self._used.get(client, 0) - count
            if remaining > 0:
                self._used[client] = remaining
            else:
                self._used.pop(client, None)

    def snapshot(self) -> Dict[str, object]:
        """Usage snapshot for ``/v1/metrics``."""
        with self._lock:
            return {
                "max_scenarios": self.max_scenarios,
                "in_flight": dict(self._used),
                "rejections": self.rejections,
            }
