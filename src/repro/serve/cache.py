"""Process-wide caches shared across server requests.

Two layers make repeat traffic cheap for every request, not just
long-lived processes:

* :class:`ResultCache` — finished sweeps keyed on
  :func:`repro.api.sweep_cache_key` (canonical scenario signatures plus
  the estimator context).  An identical re-submission is served straight
  from memory: no scenario is re-evaluated, and the cached records are
  replayed into the job's store so streamed output stays bit-identical.
* :class:`SharedCompileCache` — one :class:`repro.fastpath.BatchEstimator`
  whose compiled templates (keyed on fab-source/config-override/packaging
  signatures) persist across jobs, so request N pays only for templates
  request 1..N-1 never compiled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["ResultCache", "SharedCompileCache"]


class ResultCache:
    """Thread-safe LRU cache of finished sweep record tuples.

    The values are the exact record dicts a live run would produce (both
    backends emit bit-identical records, so a cached replay is
    indistinguishable from a re-evaluation).  ``get``/``put`` match the
    duck type :class:`repro.api.Session` expects from ``result_cache``.

    Args:
        max_entries: Entry cap; the least recently used sweep is evicted
            first.  ``None`` disables eviction.
    """

    def __init__(self, max_entries: Optional[int] = 128):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Dict[str, Any], ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], ...]]:
        """The cached records of ``key``, or ``None`` (counts hit/miss).

        Every hit returns fresh per-record dict copies, mirroring the
        defensive copy ``put`` makes on the way in: a caller mutating a
        replayed record (annotating rows, popping columns) must not corrupt
        the entry every future hit is served from.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return tuple(dict(record) for record in entry)

    def put(self, key: str, records: Sequence[Dict[str, Any]]) -> None:
        """Store the finished sweep's records under ``key``."""
        entry = tuple(dict(record) for record in records)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """``{"entries", "hits", "misses"}`` snapshot for ``/v1/metrics``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class SharedCompileCache:
    """One batch estimator — and its compiled-template caches — per process.

    Jobs running with ``backend="batch"`` and ``jobs=1`` evaluate through
    this single :class:`repro.fastpath.BatchEstimator` instead of building
    a fresh one per run (``SweepEngine(batch_estimator=...)``), so
    compiled templates survive across requests.  Sharing across worker
    threads is safe: the estimator's caches are plain dicts whose
    individual operations are GIL-atomic and whose values are
    deterministic, so the worst concurrent-miss outcome is computing the
    same immutable template twice.

    Args:
        config: Estimator configuration every job evaluates under.
        table: Technology table override.
        include_cost: Compile the dollar-cost terms too.
        persistent_cache: Optional on-disk compile cache
            (:class:`repro.fastpath.DiskCompileCache`, or a directory
            path) mounted under the shared estimator, so compiled
            templates also survive server restarts.
    """

    def __init__(
        self,
        config: Optional[Any] = None,
        table: Optional[Any] = None,
        include_cost: bool = True,
        persistent_cache: Optional[Any] = None,
    ):
        from repro.fastpath import BatchEstimator

        self.estimator = BatchEstimator(
            config=config,
            table=table,
            include_cost=include_cost,
            persistent_cache=persistent_cache,
        )

    def stats(self) -> Dict[str, int]:
        """Template-cache counters for ``/v1/metrics``."""
        return self.estimator.cache_stats()
