"""HTTP JSON API over the job manager (stdlib ``http.server`` only).

Endpoints (all JSON unless noted):

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
POST   ``/v1/sweeps``               Submit a sweep job (body: a sweep spec,
                                    or ``{"spec": {...}}``); 202 + job status
GET    ``/v1/sweeps``               List all jobs
GET    ``/v1/sweeps/{id}``          Job status / progress
GET    ``/v1/sweeps/{id}/results``  Stream the job's JSONL record store
                                    (``application/x-ndjson``, byte-exact)
GET    ``/v1/sweeps/{id}/pareto``   Pareto front (``?objectives=a,b``)
DELETE ``/v1/sweeps/{id}``          Cancel the job
GET    ``/v1/metrics``              Counters, queue depth, latency, caches
GET    ``/v1/healthz``              Liveness probe
====== ============================ ==========================================

Clients identify themselves for quota accounting with the ``X-Client-Id``
header (default ``"anonymous"``).  Errors are structured
(:mod:`repro.serve.errors`): ``{"error": {"code": ..., "message": ...}}``
with the matching HTTP status — 400 invalid spec, 404 unknown job, 409
invalid transition, 429 quota exhausted, 503 queue full or circuit open.
Transient-pressure errors (429/503) also carry a ``Retry-After`` header.
"""

from __future__ import annotations

import json
import math
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.errors import JobStateError, NotFoundError, ServeError, SpecError
from repro.serve.jobs import JobManager

__all__ = ["ServeServer", "create_server"]

_JOB_ROUTE = re.compile(r"^/v1/sweeps/(?P<id>[0-9a-f]+)(?P<tail>/results|/pareto)?$")

#: Default Pareto objectives when the query names none.
_DEFAULT_OBJECTIVES = ("total_carbon_g", "power_w")


class _Handler(BaseHTTPRequestHandler):
    server_version = "eco-chip-serve"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id", "anonymous").strip() or "anonymous"

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServeError) -> None:
        headers = None
        if exc.retry_after is not None:
            # Retry-After is delta-seconds and integral; round up so a
            # client honouring it never retries inside the window.
            headers = {"Retry-After": str(max(1, math.ceil(exc.retry_after)))}
        self._send_json(exc.http_status, exc.payload(), headers=headers)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("request body must be a JSON sweep spec")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc

    def _route(self) -> Tuple[str, Optional[str], Optional[str], Dict[str, list]]:
        parts = urlsplit(self.path)
        match = _JOB_ROUTE.match(parts.path)
        if match:
            tail = match.group("tail")
            return (
                parts.path,
                match.group("id"),
                tail.lstrip("/") if tail else None,
                parse_qs(parts.query),
            )
        return parts.path, None, None, parse_qs(parts.query)

    # -- methods ----------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _, _, _ = self._route()
        try:
            if path != "/v1/sweeps":
                raise NotFoundError(f"no such endpoint: POST {path}")
            payload = self._read_json_body()
            job = self.manager.submit(payload, client=self._client_id())
            self._send_json(202, job.to_dict())
        except ServeError as exc:
            self._send_error(exc)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, job_id, tail, query = self._route()
        try:
            if path == "/v1/healthz":
                self._send_json(200, {"status": "ok"})
            elif path == "/v1/metrics":
                self._send_json(200, self.manager.metrics_snapshot())
            elif path == "/v1/sweeps":
                self._send_json(
                    200, {"jobs": [j.to_dict() for j in self.manager.list_jobs()]}
                )
            elif job_id is not None and tail is None:
                self._send_json(200, self.manager.get(job_id).to_dict())
            elif job_id is not None and tail == "results":
                self._send_results(job_id)
            elif job_id is not None and tail == "pareto":
                self._send_pareto(job_id, query)
            else:
                raise NotFoundError(f"no such endpoint: GET {path}")
        except ServeError as exc:
            self._send_error(exc)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path, job_id, tail, _ = self._route()
        try:
            if job_id is None or tail is not None:
                raise NotFoundError(f"no such endpoint: DELETE {path}")
            job = self.manager.cancel(job_id)
            self._send_json(200, job.to_dict())
        except ServeError as exc:
            self._send_error(exc)

    # -- endpoint bodies --------------------------------------------------------------
    def _send_results(self, job_id: str) -> None:
        """Stream the job's record store verbatim (bit-identical rows)."""
        job = self.manager.get(job_id)
        if not job.store_path.is_file():
            body = b""
            size = 0
        else:
            size = job.store_path.stat().st_size
            body = None
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(size))
        self.send_header("X-Job-State", job.state)
        self.end_headers()
        if body is not None:
            return
        with open(job.store_path, "rb") as handle:
            # Stream exactly the size advertised: a job appending rows
            # concurrently must not overrun the Content-Length.
            remaining = size
            while remaining > 0:
                chunk = handle.read(min(65536, remaining))
                if not chunk:
                    break
                self.wfile.write(chunk)
                remaining -= len(chunk)

    def _send_pareto(self, job_id: str, query: Dict[str, list]) -> None:
        from repro.core.explorer import pareto_front
        from repro.sweep.store import load_rows

        job = self.manager.get(job_id)
        names = query.get("objectives", [",".join(_DEFAULT_OBJECTIVES)])[0]
        objectives = [name.strip() for name in names.split(",") if name.strip()]
        if not objectives:
            raise SpecError("objectives must name at least one record metric")
        if not job.store_path.is_file():
            self._send_json(
                200, {"id": job.id, "objectives": objectives, "front": []}
            )
            return
        # Error records (resilience containment) carry no metric columns;
        # the front is computed over the successful rows only.
        rows = [row for row in load_rows(job.store_path) if not row.record.get("error")]
        try:
            front = pareto_front(rows, objectives)
        except KeyError as exc:
            raise SpecError(str(exc)) from exc
        self._send_json(
            200,
            {
                "id": job.id,
                "objectives": objectives,
                "front": [row.record for row in front],
            },
        )


class ServeServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        verbose: bool = False,
    ):
        self.manager = manager
        self.verbose = verbose
        super().__init__(address, _Handler)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop serving and shut the manager down (see
        :meth:`JobManager.shutdown` for drain semantics)."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown(drain=drain, timeout=timeout)


def create_server(
    host: str = "127.0.0.1",
    port: int = 8437,
    *,
    manager: Optional[JobManager] = None,
    verbose: bool = False,
    **manager_kwargs: Any,
) -> ServeServer:
    """Build (and start) a server: manager, worker pool, adopted jobs.

    ``port=0`` binds an ephemeral port (``server.server_address`` has the
    real one) — handy for tests.  Extra keyword arguments construct the
    :class:`JobManager` (``store_dir`` is required then).
    """
    if manager is None:
        manager = JobManager(**manager_kwargs)
    server = ServeServer((host, port), manager, verbose=verbose)
    manager.start()
    return server
