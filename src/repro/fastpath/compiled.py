"""Template compilation for the batch fast path.

A *template* is everything about a scenario that survives changes of fab
carbon source, lifetime and manufacturing volume: the base system, its node
assignment and its packaging architecture.  :class:`TemplateCompiler`
resolves a template once — area scaling, per-chiplet packaging overheads,
floorplan geometry, yields, wafer utilisation, EDA compute time, packaging
substrate terms and the dollar-cost structure — into flat closed-form
coefficients, so that evaluating a scenario against a compiled template is
plain arithmetic (see :mod:`repro.fastpath.batch`).

Bit-exactness contract
----------------------

Every closed-form expression below replicates the *exact* floating-point
operation order of the scalar pipeline (:meth:`repro.core.estimator.EcoChip.
estimate`, the packaging models' ``evaluate`` and
:meth:`repro.cost.model.ChipletCostModel.estimate`), so batch results equal
scalar results bit for bit.  When touching any of the mirrored formulas,
update both sides and rely on the parity tests in
``tests/integration/test_batch_parity.py`` to catch divergence.

The compiler shares work across templates through layered caches: base
systems, per-(chiplet, node) areas, floorplans keyed by their area signature
(different node assignments that produce the same chiplet areas share one
floorplan — adjacency extraction runs lazily, only for architectures that
consume it), packaging models and per-node PHY/router figures per spec, and
per-die yield/wafer terms.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.system import ChipletSystem
from repro.cost.model import (
    DESIGN_COST_USD_PER_GATE,
    MASK_SET_COST_USD,
    ChipletCostModel,
    _lookup_by_node,
)
from repro.design.design_cfp import DEFAULT_COMM_DESIGN_GATES
from repro.design.eda import gates_from_transistors
from repro.floorplan.slicing import FloorplanResult, SlicingFloorplanner
from repro.manufacturing.yield_model import bonding_yield
from repro.packaging.base import PackagedChiplet, PackagingModel
from repro.packaging.bridge import (
    _BRIDGE_DEFECT_SCALE,
    _EMBEDDING_KWH_PER_BRIDGE,
    _ORGANIC_DEFECT_SCALE,
    _ORGANIC_ENERGY_SCALE,
    _ORGANIC_LAYERS,
    SiliconBridgeModel,
)
from repro.packaging.interposer import (
    ActiveInterposerModel,
    PassiveInterposerModel,
    _InterposerBase,
)
from repro.packaging.monolithic import MonolithicModel, MonolithicSpec
from repro.packaging.rdl import _RDL_DEFECT_SCALE, RDLFanoutModel
from repro.packaging.registry import build_packaging_model, spec_from_dict
from repro.packaging.threed import (
    _CONNECTION_YIELD,
    _ENERGY_KWH_PER_CONNECTION,
    _SUBSTRATE_DEFECT_SCALE,
    _SUBSTRATE_ENERGY_SCALE,
    _SUBSTRATE_LAYERS,
    _SUBSTRATE_NODE_NM,
    BondType,
    ThreeDStackModel,
)
from repro.sweep.spec import resolve_base
from repro.technology.nodes import TechnologyTable, _normalise_node_key

#: Same constant the CFPA breakdown uses for the per-cm² -> per-mm² step.
_TO_MM2 = 1.0 / 100.0


# ---------------------------------------------------------------------------
# Closed-form packaging terms (one flavour per architecture)
# ---------------------------------------------------------------------------
class PackagingTerms:
    """Scenario-independent packaging terms of one compiled template.

    ``cfp(intensity)`` returns ``(package_cfp_g, comm_cfp_g)`` exactly as the
    architecture's ``evaluate`` would for that packaging carbon intensity.
    """

    __slots__ = ("architecture", "package_area_mm2", "comm_power_w")

    def __init__(self, architecture: str, package_area_mm2: float, comm_power_w: float):
        self.architecture = architecture
        self.package_area_mm2 = package_area_mm2
        self.comm_power_w = comm_power_w

    def cfp(self, intensity: float) -> Tuple[float, float]:
        raise NotImplementedError


class _ZeroTerms(PackagingTerms):
    """Monolithic baseline: no packaging carbon at any intensity."""

    __slots__ = ()

    def cfp(self, intensity: float) -> Tuple[float, float]:
        return 0.0, 0.0


class _RdlTerms(PackagingTerms):
    __slots__ = ("energy_kwh", "package_yield")

    def __init__(self, architecture, package_area_mm2, comm_power_w, energy_kwh, package_yield):
        super().__init__(architecture, package_area_mm2, comm_power_w)
        self.energy_kwh = energy_kwh
        self.package_yield = package_yield

    def cfp(self, intensity: float) -> Tuple[float, float]:
        return self.energy_kwh * intensity / self.package_yield, 0.0


class _InterposerTerms(PackagingTerms):
    __slots__ = ("patterning_kwh", "materials_g", "interposer_yield")

    def __init__(
        self, architecture, package_area_mm2, comm_power_w,
        patterning_kwh, materials_g, interposer_yield,
    ):
        super().__init__(architecture, package_area_mm2, comm_power_w)
        self.patterning_kwh = patterning_kwh
        self.materials_g = materials_g
        self.interposer_yield = interposer_yield

    def cfp(self, intensity: float) -> Tuple[float, float]:
        patterning_g = self.patterning_kwh * intensity
        return (patterning_g + self.materials_g) / self.interposer_yield, 0.0


class _ActiveInterposerTerms(_InterposerTerms):
    __slots__ = (
        "router_count", "router_area_mm2",
        "router_eff", "router_epa", "router_gas_g_cm2", "router_material_g_cm2",
        "router_yield",
    )

    def __init__(
        self, architecture, package_area_mm2, comm_power_w,
        patterning_kwh, materials_g, interposer_yield,
        router_count, router_area_mm2,
        router_eff, router_epa, router_gas_g_cm2, router_material_g_cm2, router_yield,
    ):
        super().__init__(
            architecture, package_area_mm2, comm_power_w,
            patterning_kwh, materials_g, interposer_yield,
        )
        self.router_count = router_count
        self.router_area_mm2 = router_area_mm2
        self.router_eff = router_eff
        self.router_epa = router_epa
        self.router_gas_g_cm2 = router_gas_g_cm2
        self.router_material_g_cm2 = router_material_g_cm2
        self.router_yield = router_yield

    def cfp(self, intensity: float) -> Tuple[float, float]:
        package_cfp, _ = super().cfp(intensity)
        if not self.router_count:
            return package_cfp, 0.0
        energy_g_cm2 = self.router_eff * intensity * self.router_epa
        unyielded_cm2 = energy_g_cm2 + self.router_gas_g_cm2 + self.router_material_g_cm2
        cfpa = unyielded_cm2 * _TO_MM2 / self.router_yield
        return package_cfp, self.router_count * cfpa * self.router_area_mm2


class _BridgeTerms(PackagingTerms):
    __slots__ = (
        "kwh_per_bridge", "bridge_yield", "bridge_count",
        "substrate_kwh", "substrate_yield",
    )

    def __init__(
        self, architecture, package_area_mm2, comm_power_w,
        kwh_per_bridge, bridge_yield, bridge_count, substrate_kwh, substrate_yield,
    ):
        super().__init__(architecture, package_area_mm2, comm_power_w)
        self.kwh_per_bridge = kwh_per_bridge
        self.bridge_yield = bridge_yield
        self.bridge_count = bridge_count
        self.substrate_kwh = substrate_kwh
        self.substrate_yield = substrate_yield

    def cfp(self, intensity: float) -> Tuple[float, float]:
        per_bridge_g = self.kwh_per_bridge * intensity / self.bridge_yield
        bridges_cfp = self.bridge_count * per_bridge_g
        substrate_cfp = self.substrate_kwh * intensity / self.substrate_yield
        return bridges_cfp + substrate_cfp, 0.0


class _ThreeDTerms(PackagingTerms):
    __slots__ = (
        "connection_kwh", "assembly_yield", "has_bonds",
        "substrate_kwh", "substrate_yield", "has_substrate",
    )

    def __init__(
        self, architecture, package_area_mm2, comm_power_w,
        connection_kwh, assembly_yield, has_bonds,
        substrate_kwh, substrate_yield, has_substrate,
    ):
        super().__init__(architecture, package_area_mm2, comm_power_w)
        self.connection_kwh = connection_kwh
        self.assembly_yield = assembly_yield
        self.has_bonds = has_bonds
        self.substrate_kwh = substrate_kwh
        self.substrate_yield = substrate_yield
        self.has_substrate = has_substrate

    def cfp(self, intensity: float) -> Tuple[float, float]:
        bonds_cfp = 0.0
        if self.has_bonds:
            bonds_cfp = self.connection_kwh * intensity / self.assembly_yield
        substrate_cfp = 0.0
        if self.has_substrate:
            substrate_cfp = self.substrate_kwh * intensity / self.substrate_yield
        return bonds_cfp + substrate_cfp, 0.0


def _rdl_energy_kwh(
    table: TechnologyTable, area_mm2: float, node: Any, layers: float, energy_scale: float
) -> float:
    """The intensity-free factor of ``PackagingModel.rdl_layer_cfp_g``."""
    record = table.get(node)
    return layers * record.epla_rdl_kwh_per_cm2 * energy_scale * (area_mm2 / 100.0)


def _compile_packaging_terms(
    model: PackagingModel,
    node_keys: Tuple[Any, ...],
    area_values: Tuple[float, ...],
    floorplan: FloorplanResult,
    phy_power: Callable[[Any], float],
    router_power: Callable[[Any], float],
) -> PackagingTerms:
    """Flatten ``model.evaluate`` into closed form over compiled geometry.

    ``phy_power``/``router_power`` supply the per-chiplet communication
    power figures (cached by the compiler; the module-level
    :func:`compile_packaging` passes direct model calls).
    """
    table = model.table
    area = floorplan.package_area_mm2
    chiplet_count = len(node_keys)

    if isinstance(model, MonolithicModel):
        return _ZeroTerms(model.architecture, area, 0.0)

    if isinstance(model, RDLFanoutModel):
        spec = model.spec
        package_yield = model.substrate_yield(
            area, spec.technology_nm, defect_scale=_RDL_DEFECT_SCALE
        )
        energy_kwh = _rdl_energy_kwh(table, area, spec.technology_nm, spec.layers, 1.0)
        comm_power = 0.0
        if chiplet_count > 1:
            for node in node_keys:
                comm_power += phy_power(node)
        return _RdlTerms(model.architecture, area, comm_power, energy_kwh, package_yield)

    if isinstance(model, _InterposerBase):
        spec = model.spec  # type: ignore[attr-defined]
        record = table.get(spec.technology_nm)
        interposer_yield = model.substrate_yield(area, spec.technology_nm, defect_scale=1.0)
        patterning_kwh = _rdl_energy_kwh(table, area, spec.technology_nm, spec.beol_layers, 1.0)
        materials_g = (
            (record.material_kg_per_cm2 + record.gas_kg_per_cm2)
            * 1000.0
            * (area / 100.0)
        )
        if isinstance(model, PassiveInterposerModel):
            comm_power = 0.0
            if chiplet_count > 1:
                for node in node_keys:
                    comm_power += router_power(node)
            return _InterposerTerms(
                model.architecture, area, comm_power,
                patterning_kwh, materials_g, interposer_yield,
            )
        assert isinstance(model, ActiveInterposerModel)
        router_count = chiplet_count if chiplet_count > 1 else 0
        router_area = model.router_area_mm2(spec.technology_nm)
        comm_power = 0.0
        router_eff = router_epa = router_gas = router_material = 0.0
        router_yield = 1.0
        if router_count:
            router_record = table.get(spec.technology_nm)
            router_eff = router_record.equipment_efficiency
            router_epa = router_record.epa_kwh_per_cm2
            router_gas = router_record.gas_kg_per_cm2 * 1000.0
            router_material = router_record.material_kg_per_cm2 * 1000.0
            router_yield = model.yield_model.die_yield(router_area, spec.technology_nm)
            comm_power = router_count * router_power(spec.technology_nm)
        return _ActiveInterposerTerms(
            model.architecture, area, comm_power,
            patterning_kwh, materials_g, interposer_yield,
            router_count, router_area,
            router_eff, router_epa, router_gas, router_material, router_yield,
        )

    if isinstance(model, SiliconBridgeModel):
        spec = model.spec
        record = table.get(spec.bridge_technology_nm)
        bridge_yield = model.substrate_yield(
            spec.bridge_area_mm2, spec.bridge_technology_nm, defect_scale=_BRIDGE_DEFECT_SCALE
        )
        patterning_kwh = (
            spec.bridge_layers
            * record.epla_bridge_kwh_per_cm2
            * (spec.bridge_area_mm2 / 100.0)
        )
        kwh_per_bridge = patterning_kwh + _EMBEDDING_KWH_PER_BRIDGE
        n_bridges = model.bridge_count(floorplan)
        substrate_yield = model.substrate_yield(area, 65, defect_scale=_ORGANIC_DEFECT_SCALE)
        substrate_kwh = _rdl_energy_kwh(table, area, 65, _ORGANIC_LAYERS, _ORGANIC_ENERGY_SCALE)
        comm_power = 0.0
        if chiplet_count > 1:
            for node in node_keys:
                comm_power += phy_power(node)
        return _BridgeTerms(
            model.architecture, area, comm_power,
            kwh_per_bridge, bridge_yield, n_bridges, substrate_kwh, substrate_yield,
        )

    if isinstance(model, ThreeDStackModel):
        spec = model.spec
        bond = BondType.parse(spec.bond_type)
        # interface_connections, replicated over the bare area values: tiers
        # stack in decreasing-area order, each interface spans the smaller
        # facing footprint at the spec's connection density.
        ordered = sorted(area_values, key=lambda value: -value)
        density = model.connections_per_mm2()
        counts = [
            min(lower, upper) * density for lower, upper in zip(ordered, ordered[1:])
        ]
        total_connections = sum(counts)
        assembly_yield = 1.0
        for count in counts:
            assembly_yield *= bonding_yield(count, _CONNECTION_YIELD[bond])
        connection_kwh = total_connections * _ENERGY_KWH_PER_CONNECTION[bond]
        has_bonds = total_connections > 0 and assembly_yield > 0
        footprint = max(area_values, default=0.0)
        has_substrate = footprint > 0
        substrate_yield = (
            model.substrate_yield(
                footprint, _SUBSTRATE_NODE_NM, defect_scale=_SUBSTRATE_DEFECT_SCALE
            )
            if has_substrate
            else 1.0
        )
        substrate_kwh = (
            _rdl_energy_kwh(
                table, footprint, _SUBSTRATE_NODE_NM, _SUBSTRATE_LAYERS,
                _SUBSTRATE_ENERGY_SCALE,
            )
            if has_substrate
            else 0.0
        )
        return _ThreeDTerms(
            model.architecture, area, 0.0,
            connection_kwh, assembly_yield, has_bonds,
            substrate_kwh, substrate_yield, has_substrate,
        )

    raise TypeError(
        f"no closed-form packaging terms for {type(model).__name__}; "
        "use the scalar backend for custom packaging models"
    )


def compile_packaging(
    model: PackagingModel,
    packaged_chiplets: Tuple[PackagedChiplet, ...],
    floorplan: FloorplanResult,
) -> PackagingTerms:
    """Flatten ``model.evaluate(packaged_chiplets, floorplan)`` into closed form."""
    spec = getattr(model, "spec", None)

    def phy_power(node: Any) -> float:
        return model.phy_model.average_power_w(node, lanes=spec.phy_lanes)

    def router_power(node: Any) -> float:
        return model.router_power_w(node, injection_rate=spec.router_injection_rate)

    return _compile_packaging_terms(
        model,
        tuple(chiplet.node for chiplet in packaged_chiplets),
        tuple(chiplet.area_mm2 for chiplet in packaged_chiplets),
        floorplan,
        phy_power,
        router_power,
    )


# ---------------------------------------------------------------------------
# Per-chiplet and cost terms
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ChipletTerms:
    """Scenario-independent coefficients of one chiplet in a template.

    ``eff``/``epa``/``gas_g_cm2``/``material_g_cm2`` feed the Eq. 6 CFPA
    closed form, ``yield_value``/``wasted_area_mm2`` the Eq. 5 terms, and
    ``design_energy_kwh`` is the intensity-free factor of the chiplet's
    un-amortised design CFP (zero for reused IP).
    """

    name: str
    final_area_mm2: float
    eff: float
    epa: float
    gas_g_cm2: float
    material_g_cm2: float
    yield_value: float
    wasted_area_mm2: float
    design_energy_kwh: float
    reused: bool
    explicit_volume: Optional[float]


@dataclasses.dataclass(frozen=True)
class CostGroupTerms:
    """One NRE-sharing design group of the dollar-cost model."""

    masks_plus_design_usd: float
    reused: bool
    member_volumes: Tuple[Optional[float], ...]


@dataclasses.dataclass(frozen=True)
class CostTerms:
    """Closed-form dollar cost: fixed part plus volume-amortised NRE."""

    fixed_usd: float
    groups: Tuple[CostGroupTerms, ...]

    def total_usd(self, system_volume: float) -> float:
        """``ChipletCostModel.estimate(...).total_cost_usd`` for ``NS``."""
        nre_total = 0.0
        for group in self.groups:
            if group.reused:
                continue  # nre_cost_usd returns 0.0 for reused groups
            volume = 0.0
            for member in group.member_volumes:
                volume += member if member is not None else system_volume
            nre_total += group.masks_plus_design_usd / volume
        return self.fixed_usd + nre_total


@dataclasses.dataclass(frozen=True)
class SourceTerms:
    """Per-(template, fab source) terms: everything but lifetime and volume.

    ``design_parts`` holds one ``(is_fixed, value)`` pair per chiplet: fixed
    parts are already-amortised grams (reused IP or explicit ``NM``), scaled
    parts are un-amortised grams still to be divided by ``NS``.
    """

    fab_label: str
    manufacturing_total_g: float
    hi_total_g: float
    design_parts: Tuple[Tuple[bool, float], ...]
    comm_design_total_g: float


class CompiledSystem:
    """One fully-compiled scenario template plus its per-source term cache."""

    __slots__ = (
        "system_name", "node_values", "architecture",
        "chiplets", "packaging", "comm_design_energy_kwh",
        "base_volume", "base_lifetime",
        "annual_cfp_g", "power_w", "silicon_area_mm2", "package_area_mm2",
        "cost", "source_terms_cache",
    )

    def __init__(
        self,
        system_name: str,
        node_values: Tuple[float, ...],
        base_volume: float,
        base_lifetime: float,
        chiplets: Tuple[ChipletTerms, ...],
        packaging: PackagingTerms,
        comm_design_energy_kwh: Optional[float],
        annual_cfp_g: float,
        power_w: float,
        silicon_area_mm2: float,
        cost: Optional[CostTerms],
    ):
        self.system_name = system_name
        self.node_values = node_values
        self.architecture = packaging.architecture
        self.chiplets = chiplets
        self.packaging = packaging
        self.comm_design_energy_kwh = comm_design_energy_kwh
        self.base_volume = base_volume
        self.base_lifetime = base_lifetime
        self.annual_cfp_g = annual_cfp_g
        self.power_w = power_w
        self.silicon_area_mm2 = silicon_area_mm2
        self.package_area_mm2 = packaging.package_area_mm2
        self.cost = cost
        self.source_terms_cache: Dict[Optional[str], SourceTerms] = {}


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------
def packaging_signature(packaging: Optional[Mapping[str, Any]]) -> Optional[Tuple]:
    """Hashable canonical form of a scenario packaging-override dict."""
    if packaging is None:
        return None
    return tuple(sorted((str(key), repr(value)) for key, value in packaging.items()))


TemplateKey = Tuple[str, str, Optional[Tuple[float, ...]], Optional[Tuple]]


class TemplateCompiler:
    """Compiles and caches :class:`CompiledSystem` templates.

    Args:
        config: Estimator configuration (same meaning as for
            :class:`repro.core.estimator.EcoChip`).
        table: Technology table override.
        include_cost: Also compile the dollar-cost terms for ``cost_usd``.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        table: Optional[TechnologyTable] = None,
        include_cost: bool = True,
    ):
        self.config = config if config is not None else EstimatorConfig()
        self.estimator = EcoChip(config=self.config, table=table)
        self.cost_model = (
            ChipletCostModel(table=self.estimator.table) if include_cost else None
        )
        self._bases: Dict[Tuple[str, str], ChipletSystem] = {}
        self._templates: Dict[TemplateKey, CompiledSystem] = {}
        # packaging signature -> packaging spec
        self._specs: Dict[Tuple, Any] = {}
        # (base key, chiplet name, node) -> (base area, transistor count)
        self._areas: Dict[Tuple[Tuple[str, str], str, float], Tuple[float, float]] = {}
        # packaging spec -> model (compile-time only: yields / areas / powers)
        self._packaging_models: Dict[Any, PackagingModel] = {}
        # (packaging spec, node, chiplet count) -> per-chiplet area overhead
        self._overheads: Dict[Tuple[Any, float, int], float] = {}
        # (packaging spec, node) -> PHY / router communication power figures
        self._phy_powers: Dict[Tuple[Any, float], float] = {}
        self._router_powers: Dict[Tuple[Any, float], float] = {}
        # (spacing, area items) -> (floorplan, has adjacencies), shared
        # across templates: equal area signatures floorplan identically.
        self._floorplans: Dict[
            Tuple[float, Tuple[Tuple[str, float], ...]], Tuple[FloorplanResult, bool]
        ] = {}
        # (final area, node) -> (die yield, wasted wafer area per die)
        self._die_terms: Dict[Tuple[float, float], Tuple[float, float]] = {}
        # (transistors, node, iterations) -> design energy in kWh
        self._design_kwh: Dict[Tuple[float, float, int], float] = {}
        # iterations -> inter-die communication design energy in kWh
        self._comm_kwh: Dict[int, float] = {}
        # (base area, node) -> die cost in USD
        self._die_costs: Dict[Tuple[float, float], float] = {}

    # -- shared-cache helpers -------------------------------------------------------
    def base_system(self, base_kind: str, base_ref: str) -> ChipletSystem:
        """The (cached) base system a template builds on."""
        key = (base_kind, base_ref)
        system = self._bases.get(key)
        if system is None:
            system = resolve_base(base_kind, base_ref)
            self._bases[key] = system
        return system

    def _floorplan(
        self,
        planner: SlicingFloorplanner,
        areas: Dict[str, float],
        need_adjacencies: bool,
    ) -> FloorplanResult:
        key = (planner.spacing_mm, tuple(areas.items()))
        entry = self._floorplans.get(key)
        if entry is None:
            floorplan = planner.floorplan(areas, adjacencies=need_adjacencies)
            self._floorplans[key] = (floorplan, need_adjacencies)
            return floorplan
        floorplan, has_adjacencies = entry
        if need_adjacencies and not has_adjacencies:
            floorplan = planner.adjacencies_of(floorplan)
            self._floorplans[key] = (floorplan, True)
        return floorplan

    def _packaging_model(self, spec: Any) -> PackagingModel:
        model = self._packaging_models.get(spec)
        if model is None:
            # The intensity of this model instance is never used: the
            # compiler only reads its geometry, yield and power helpers.
            model = build_packaging_model(
                spec,
                table=self.estimator.table,
                package_carbon_source=self.config.package_carbon_source,
                router_spec=self.config.router_spec,
            )
            self._packaging_models[spec] = model
        return model

    def _packaging_spec(self, packaging: Optional[Mapping[str, Any]], base: ChipletSystem):
        if packaging is None:
            return base.packaging
        signature = packaging_signature(packaging)
        spec = self._specs.get(signature)
        if spec is None:
            spec = spec_from_dict(dict(packaging))
            self._specs[signature] = spec
        return spec

    # -- template compilation ---------------------------------------------------------
    def compile(
        self,
        base_kind: str,
        base_ref: str,
        nodes: Optional[Tuple[float, ...]],
        packaging: Optional[Mapping[str, Any]],
    ) -> CompiledSystem:
        """Compile (or fetch) the template for one scenario family."""
        key: TemplateKey = (base_kind, base_ref, nodes, packaging_signature(packaging))
        template = self._templates.get(key)
        if template is None:
            template = self._compile(base_kind, base_ref, nodes, packaging)
            self._templates[key] = template
        return template

    def _compile(
        self,
        base_kind: str,
        base_ref: str,
        nodes: Optional[Tuple[float, ...]],
        packaging: Optional[Mapping[str, Any]],
    ) -> CompiledSystem:
        base_key = (base_kind, base_ref)
        base = self.base_system(base_kind, base_ref)
        estimator = self.estimator
        spec = self._packaging_spec(packaging, base)
        model = self._packaging_model(spec)
        chiplet_count = base.chiplet_count
        is_monolithic = chiplet_count == 1 or isinstance(spec, MonolithicSpec)

        if nodes is not None:
            if len(nodes) != chiplet_count:
                raise ValueError(
                    f"expected {chiplet_count} nodes, got {len(nodes)}"
                )
            node_keys = tuple(_normalise_node_key(node) for node in nodes)
        else:
            node_keys = tuple(chiplet.node for chiplet in base.chiplets)
        node_values = tuple(float(node) for node in node_keys)

        # Geometry (estimator steps 1–3) with cross-template caches; this is
        # compute_geometry without materialising a retargeted ChipletSystem.
        final_areas: Dict[str, float] = {}
        final_area_values: List[float] = []
        transistor_counts: List[float] = []
        for chiplet, node_key, node_value in zip(base.chiplets, node_keys, node_values):
            area_key = (base_key, chiplet.name, node_value)
            cached = self._areas.get(area_key)
            if cached is None:
                cached = (
                    chiplet.area_at_node(estimator.scaling, node_key),
                    chiplet.transistor_count(estimator.scaling),
                )
                self._areas[area_key] = cached
            base_area, transistors = cached
            transistor_counts.append(transistors)
            overhead_key = (spec, node_value, chiplet_count)
            overhead = self._overheads.get(overhead_key)
            if overhead is None:
                probe = PackagedChiplet(
                    name=chiplet.name,
                    area_mm2=base_area,
                    node=node_value,
                    design_type=chiplet.design_type,  # type: ignore[arg-type]
                )
                overhead = model.chiplet_area_overhead_mm2(probe, chiplet_count)
                self._overheads[overhead_key] = overhead
            final_area = base_area + overhead
            final_areas[chiplet.name] = final_area
            final_area_values.append(final_area)
        needs_adjacencies = isinstance(model, SiliconBridgeModel)
        floorplan = self._floorplan(estimator.floorplanner, final_areas, needs_adjacencies)
        packaging_terms = self._compile_packaging(
            model, spec, node_keys, node_values, tuple(final_area_values), floorplan
        )

        # Per-chiplet manufacturing and design coefficients.
        design_model = estimator.design_model
        table = estimator.table
        chiplet_terms: List[ChipletTerms] = []
        for chiplet, node_key, node_value, transistors, final_area in zip(
            base.chiplets, node_keys, node_values, transistor_counts, final_area_values
        ):
            die_key = (final_area, node_value)
            die_terms = self._die_terms.get(die_key)
            if die_terms is None:
                die_terms = (
                    estimator.manufacturing.yield_model.die_yield(final_area, node_key),
                    estimator.manufacturing.wafer.utilisation(
                        final_area
                    ).wasted_area_per_die_mm2,
                )
                self._die_terms[die_key] = die_terms
            yield_value, wasted_area = die_terms
            record = table.get(node_key)
            if chiplet.reused:
                design_kwh = 0.0
            else:
                kwh_key = (transistors, node_value, base.design_iterations)
                design_kwh = self._design_kwh.get(kwh_key)
                if design_kwh is None:
                    gates = gates_from_transistors(
                        transistors, design_model.transistors_per_gate
                    )
                    hours = design_model.spr_model.design_hours(
                        gates, node_key, base.design_iterations
                    )
                    design_kwh = hours * design_model.design_power_w / 1000.0
                    self._design_kwh[kwh_key] = design_kwh
            chiplet_terms.append(
                ChipletTerms(
                    name=chiplet.name,
                    final_area_mm2=final_area,
                    eff=record.equipment_efficiency,
                    epa=record.epa_kwh_per_cm2,
                    gas_g_cm2=record.gas_kg_per_cm2 * 1000.0,
                    material_g_cm2=record.material_kg_per_cm2 * 1000.0,
                    yield_value=yield_value,
                    wasted_area_mm2=wasted_area,
                    design_energy_kwh=design_kwh,
                    reused=chiplet.reused,
                    explicit_volume=chiplet.manufactured_volume,
                )
            )

        # Inter-die communication design effort (None for monolithic systems).
        comm_design_kwh: Optional[float] = None
        if not is_monolithic and DEFAULT_COMM_DESIGN_GATES > 0:
            comm_design_kwh = self._comm_kwh.get(base.design_iterations)
            if comm_design_kwh is None:
                comm_hours = design_model.spr_model.design_hours(
                    DEFAULT_COMM_DESIGN_GATES, 7, base.design_iterations
                )
                comm_design_kwh = comm_hours * design_model.design_power_w / 1000.0
                self._comm_kwh[base.design_iterations] = comm_design_kwh

        # Operational terms (estimator step 7): _effective_operating_spec
        # replicated over the compiled geometry — the annual footprint and
        # the power figure are lifetime- and fab-source-independent.
        operating = base.operating.with_comm_power(packaging_terms.comm_power_w)
        if operating.annual_energy_kwh is None and operating.average_power_w is None:
            total_area = sum(final_areas.values())
            updates: Dict[str, object] = {}
            energy_model = estimator.energy_model
            if operating.leakage_current_a is None:
                updates["leakage_current_a"] = sum(
                    energy_model.leakage_current_a(final_areas[c.name], node)
                    for c, node in zip(base.chiplets, node_keys)
                )
            if operating.load_capacitance_f is None:
                updates["load_capacitance_f"] = sum(
                    energy_model.load_capacitance_f(final_areas[c.name], node)
                    for c, node in zip(base.chiplets, node_keys)
                )
            if operating.vdd_v is None and total_area > 0:
                updates["vdd_v"] = sum(
                    table.get(node).vdd_v * final_areas[c.name]
                    for c, node in zip(base.chiplets, node_keys)
                ) / total_area
            if updates:
                operating = dataclasses.replace(operating, **updates)
        operational = estimator.operational_model.evaluate(operating)

        silicon_area = sum(final_area_values)

        cost_terms = (
            self._compile_cost(base_key, base, node_values) if self.cost_model else None
        )

        return CompiledSystem(
            system_name=base.name,
            node_values=node_values,
            base_volume=base.system_volume,
            base_lifetime=base.operating.lifetime_years,
            chiplets=tuple(chiplet_terms),
            packaging=packaging_terms,
            comm_design_energy_kwh=comm_design_kwh,
            annual_cfp_g=operational.annual_cfp_g,
            power_w=operational.energy.total_power_w,
            silicon_area_mm2=silicon_area,
            cost=cost_terms,
        )

    def _compile_packaging(
        self,
        model: PackagingModel,
        spec: Any,
        node_keys: Tuple[Any, ...],
        node_values: Tuple[float, ...],
        area_values: Tuple[float, ...],
        floorplan: FloorplanResult,
    ) -> PackagingTerms:
        phy_powers = self._phy_powers
        router_powers = self._router_powers

        def phy_power(node: Any) -> float:
            key = (spec, float(node))
            value = phy_powers.get(key)
            if value is None:
                value = model.phy_model.average_power_w(node, lanes=spec.phy_lanes)
                phy_powers[key] = value
            return value

        def router_power(node: Any) -> float:
            key = (spec, float(node))
            value = router_powers.get(key)
            if value is None:
                value = model.router_power_w(
                    node, injection_rate=spec.router_injection_rate
                )
                router_powers[key] = value
            return value

        return _compile_packaging_terms(
            model, node_keys, area_values, floorplan, phy_power, router_power
        )

    def _compile_cost(
        self,
        base_key: Tuple[str, str],
        base: ChipletSystem,
        node_values: Tuple[float, ...],
    ) -> CostTerms:
        """Flatten :meth:`ChipletCostModel.estimate` for this template.

        Mirrors the scalar model exactly: per-chiplet die costs and the
        assembly cost are volume-independent, NRE-sharing design groups keep
        their insertion order and fold member volumes left to right.
        """
        cost_model = self.cost_model
        assert cost_model is not None
        areas: Dict[str, float] = {}
        die_cost_sum = 0.0
        group_order: List[Tuple[str, float, float]] = []
        group_members: Dict[Tuple[str, float, float], List[Optional[float]]] = {}
        group_meta: Dict[Tuple[str, float, float], Tuple[float, bool]] = {}
        for chiplet, node_value in zip(base.chiplets, node_values):
            # Base areas (no packaging overhead), identical to the cached
            # estimator values: both scaling models share the table.
            base_area, transistors = self._areas[(base_key, chiplet.name, node_value)]
            areas[chiplet.name] = base_area
            die_key = (base_area, node_value)
            die_cost = self._die_costs.get(die_key)
            if die_cost is None:
                die_cost = cost_model.die_cost_usd(base_area, node_value)
                self._die_costs[die_key] = die_cost
            die_cost_sum += die_cost
            signature = (
                chiplet.design_type.value,  # type: ignore[union-attr]
                node_value,
                round(transistors, 3),
            )
            if signature not in group_members:
                group_order.append(signature)
                group_members[signature] = []
                group_meta[signature] = (transistors, True)
            group_members[signature].append(chiplet.manufactured_volume)
            transistors_first, all_reused = group_meta[signature]
            group_meta[signature] = (transistors_first, all_reused and chiplet.reused)

        package_area = self._floorplan(
            cost_model.floorplanner, areas, need_adjacencies=False
        ).package_area_mm2
        assembly = cost_model.assembly_cost_usd(package_area, len(base.chiplets))
        fixed = die_cost_sum + assembly

        groups: List[CostGroupTerms] = []
        for signature in group_order:
            transistors_first, all_reused = group_meta[signature]
            # nre_cost_usd: (mask set + design) / volume; the numerator is
            # volume-independent, so precompute the sum with the same ops.
            masks = _lookup_by_node(MASK_SET_COST_USD, signature[1])
            gates = transistors_first / 6.25
            design = gates * DESIGN_COST_USD_PER_GATE
            groups.append(
                CostGroupTerms(
                    masks_plus_design_usd=masks + design,
                    reused=all_reused,
                    member_volumes=tuple(group_members[signature]),
                )
            )
        return CostTerms(fixed_usd=fixed, groups=tuple(groups))
