"""Template compilation for the batch fast path.

A *template* is everything about a scenario that survives changes of fab
carbon source, lifetime and manufacturing volume: the base system, its node
assignment and its packaging architecture.  :class:`TemplateCompiler`
resolves a template once — area scaling, per-chiplet packaging overheads,
floorplan geometry, yields, wafer utilisation, EDA compute time, packaging
substrate terms and the dollar-cost structure — into flat closed-form
coefficients, so that evaluating a scenario against a compiled template is
plain arithmetic (see :mod:`repro.fastpath.batch`).

Bit-exactness contract
----------------------

Every closed-form expression below replicates the *exact* floating-point
operation order of the scalar pipeline (:meth:`repro.core.estimator.EcoChip.
estimate`, the packaging models' ``evaluate`` and
:meth:`repro.cost.model.ChipletCostModel.estimate`), so batch results equal
scalar results bit for bit.  When touching any of the mirrored formulas,
update both sides and rely on the parity tests in
``tests/integration/test_batch_parity.py`` to catch divergence.

The compiler shares work across templates through layered caches: base
systems, per-(chiplet, node) areas, floorplans keyed by their area signature
(different node assignments that produce the same chiplet areas share one
floorplan — adjacency extraction runs lazily, only for architectures whose
:attr:`~repro.packaging.base.PackagingModel.needs_adjacencies` flag is
set), packaging models and per-node PHY/router figures per spec, and
per-die yield/wafer terms.

Per-architecture closed forms live with their models: every
:class:`~repro.packaging.base.PackagingModel` implements
:meth:`~repro.packaging.base.PackagingModel.compile_terms` next to the
``evaluate`` formula it mirrors, so the compiler needs no per-architecture
dispatch and out-of-tree architectures registered through
:func:`repro.packaging.registry.register_packaging` compile like built-in
ones.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.axes import (
    apply_system_overrides,
    system_overrides_signature,
    template_overrides_signature,
)
from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.system import ChipletSystem
from repro.fastpath.diskcache import DiskCompileCache, as_disk_cache
from repro.cost.model import (
    DESIGN_COST_USD_PER_GATE,
    MASK_SET_COST_USD,
    ChipletCostModel,
    _lookup_by_node,
)
from repro.design.design_cfp import DEFAULT_COMM_DESIGN_GATES
from repro.design.eda import gates_from_transistors
from repro.floorplan.slicing import FloorplanResult, SlicingFloorplanner
from repro.packaging.base import PackagedChiplet, PackagingModel, PackagingTerms
from repro.packaging.registry import build_packaging_model, spec_from_dict
from repro.sweep.spec import packaging_signature, resolve_base
from repro.technology.nodes import (
    TechnologyTable,
    _normalise_node_key,
    table_signature,
)

__all__ = [
    "ChipletTerms",
    "CompiledSystem",
    "CostGroupTerms",
    "CostTerms",
    "PackagingTerms",
    "SourceTerms",
    "TemplateCompiler",
    "TemplateKey",
    "compile_packaging",
    "packaging_signature",
]


def compile_packaging(
    model: PackagingModel,
    packaged_chiplets: Tuple[PackagedChiplet, ...],
    floorplan: FloorplanResult,
) -> PackagingTerms:
    """Flatten ``model.evaluate(packaged_chiplets, floorplan)`` into closed form.

    Convenience wrapper around :meth:`PackagingModel.compile_terms` with
    uncached per-call PHY/router power figures; the compiler proper goes
    through :meth:`TemplateCompiler._compile_packaging`, which caches them
    per (spec, node).
    """
    spec = getattr(model, "spec", None)

    def phy_power(node: Any) -> float:
        return model.phy_model.average_power_w(node, lanes=spec.phy_lanes)

    def router_power(node: Any) -> float:
        return model.router_power_w(node, injection_rate=spec.router_injection_rate)

    return model.compile_terms(
        tuple(chiplet.node for chiplet in packaged_chiplets),
        tuple(chiplet.area_mm2 for chiplet in packaged_chiplets),
        floorplan,
        phy_power,
        router_power,
    )


# ---------------------------------------------------------------------------
# Per-chiplet and cost terms
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ChipletTerms:
    """Scenario-independent coefficients of one chiplet in a template.

    ``eff``/``epa``/``gas_g_cm2``/``material_g_cm2`` feed the Eq. 6 CFPA
    closed form, ``yield_value``/``wasted_area_mm2`` the Eq. 5 terms, and
    ``design_energy_kwh`` is the intensity-free factor of the chiplet's
    un-amortised design CFP (zero for reused IP).
    """

    name: str
    final_area_mm2: float
    eff: float
    epa: float
    gas_g_cm2: float
    material_g_cm2: float
    yield_value: float
    wasted_area_mm2: float
    design_energy_kwh: float
    reused: bool
    explicit_volume: Optional[float]


@dataclasses.dataclass(frozen=True)
class CostGroupTerms:
    """One NRE-sharing design group of the dollar-cost model."""

    masks_plus_design_usd: float
    reused: bool
    member_volumes: Tuple[Optional[float], ...]


@dataclasses.dataclass(frozen=True)
class CostTerms:
    """Closed-form dollar cost: fixed part plus volume-amortised NRE."""

    fixed_usd: float
    groups: Tuple[CostGroupTerms, ...]

    def total_usd(self, system_volume: float) -> float:
        """``ChipletCostModel.estimate(...).total_cost_usd`` for ``NS``."""
        nre_total = 0.0
        for group in self.groups:
            if group.reused:
                continue  # nre_cost_usd returns 0.0 for reused groups
            volume = 0.0
            for member in group.member_volumes:
                volume += member if member is not None else system_volume
            nre_total += group.masks_plus_design_usd / volume
        return self.fixed_usd + nre_total


@dataclasses.dataclass(frozen=True)
class SourceTerms:
    """Per-(template, fab source) terms: everything but lifetime and volume.

    ``design_parts`` holds one ``(is_fixed, value)`` pair per chiplet: fixed
    parts are already-amortised grams (reused IP or explicit ``NM``), scaled
    parts are un-amortised grams still to be divided by ``NS``.
    """

    fab_label: str
    manufacturing_total_g: float
    hi_total_g: float
    design_parts: Tuple[Tuple[bool, float], ...]
    comm_design_total_g: float


class CompiledSystem:
    """One fully-compiled scenario template plus its per-source term cache."""

    __slots__ = (
        "system_name", "node_values", "architecture",
        "chiplets", "packaging", "comm_design_energy_kwh",
        "base_volume", "base_lifetime",
        "annual_cfp_g", "power_w", "silicon_area_mm2", "package_area_mm2",
        "cost", "source_terms_cache",
    )

    def __init__(
        self,
        system_name: str,
        node_values: Tuple[float, ...],
        base_volume: float,
        base_lifetime: float,
        chiplets: Tuple[ChipletTerms, ...],
        packaging: PackagingTerms,
        comm_design_energy_kwh: Optional[float],
        annual_cfp_g: float,
        power_w: float,
        silicon_area_mm2: float,
        cost: Optional[CostTerms],
    ):
        self.system_name = system_name
        self.node_values = node_values
        self.architecture = packaging.architecture
        self.chiplets = chiplets
        self.packaging = packaging
        self.comm_design_energy_kwh = comm_design_energy_kwh
        self.base_volume = base_volume
        self.base_lifetime = base_lifetime
        self.annual_cfp_g = annual_cfp_g
        self.power_w = power_w
        self.silicon_area_mm2 = silicon_area_mm2
        self.package_area_mm2 = packaging.package_area_mm2
        self.cost = cost
        self.source_terms_cache: Dict[Optional[str], SourceTerms] = {}


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------
#: Template keys carry the *full* parameterised packaging spec — the
#: packaging component is :func:`repro.sweep.spec.packaging_signature` of
#: the concrete override dict — plus the registered-axis override terms
#: (:func:`repro.axes.template_overrides_signature`, which runs each
#: axis's ``compile_terms`` hook), so two scenarios that differ in any
#: param-axis or axis-override value compile to distinct templates while
#: scenarios sharing every value share one.
TemplateKey = Tuple[
    str, str, Optional[Tuple[float, ...]], Optional[Tuple], Optional[Tuple]
]


class TemplateCompiler:
    """Compiles and caches :class:`CompiledSystem` templates.

    Args:
        config: Estimator configuration (same meaning as for
            :class:`repro.core.estimator.EcoChip`).
        table: Technology table override.
        include_cost: Also compile the dollar-cost terms for ``cost_usd``.
        persistent_cache: Optional on-disk compile cache
            (:class:`repro.fastpath.DiskCompileCache` or a directory path):
            templates and floorplans missing from the in-memory caches are
            loaded from (and compiled results stored to) disk, so cold
            starts across processes, runs and server restarts share one
            compile investment.  Entries are salted with the config, the
            technology-table content hash and the cost flag, so a cache
            directory may be shared between differently-configured
            compilers without cross-talk.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        table: Optional[TechnologyTable] = None,
        include_cost: bool = True,
        persistent_cache: Optional[Any] = None,
    ):
        self.config = config if config is not None else EstimatorConfig()
        self.estimator = EcoChip(config=self.config, table=table)
        self.cost_model = (
            ChipletCostModel(table=self.estimator.table) if include_cost else None
        )
        self.persistent_cache: Optional[DiskCompileCache] = as_disk_cache(
            persistent_cache
        )
        #: Everything template values depend on besides the template key
        #: itself — table content, config, cost flag — pre-digested so each
        #: entry address hashes a short string, not the full config repr.
        #: Computed only when a persistent cache is mounted: cache-less
        #: compilers (the common case) skip the table walk entirely.
        if self.persistent_cache is not None:
            import hashlib

            self._disk_salt: Optional[str] = hashlib.sha256(
                repr(
                    (table_signature(table), repr(self.config), bool(include_cost))
                ).encode("utf-8")
            ).hexdigest()
        else:
            self._disk_salt = None
        self._bases: Dict[Tuple[str, str], ChipletSystem] = {}
        self._templates: Dict[TemplateKey, CompiledSystem] = {}
        #: Template-cache hit/miss counters (int increments are GIL-atomic;
        #: a server sharing one compiler across threads reads these for its
        #: /v1/metrics endpoint).  ``template_misses`` counts in-memory
        #: misses; ``compiles`` counts the subset that also missed the
        #: persistent cache and ran the full compile.
        self.template_hits = 0
        self.template_misses = 0
        self.compiles = 0
        self.disk_hits = 0
        self.disk_misses = 0
        # design-directory base ref -> content fingerprint (templates built
        # on on-disk designs key their persistent entries on the files too).
        self._dir_fingerprints: Dict[str, Tuple[Tuple[str, str], ...]] = {}
        # packaging signature -> packaging spec
        self._specs: Dict[Tuple, Any] = {}
        # (base key incl. system-override signature, chiplet name, node)
        # -> (base area, transistor count)
        self._areas: Dict[
            Tuple[Tuple[str, str, Optional[Tuple]], str, float], Tuple[float, float]
        ] = {}
        # packaging spec -> model (compile-time only: yields / areas / powers)
        self._packaging_models: Dict[Any, PackagingModel] = {}
        # (packaging spec, node, chiplet count) -> per-chiplet area overhead
        self._overheads: Dict[Tuple[Any, float, int], float] = {}
        # (packaging spec, node) -> PHY / router communication power figures
        self._phy_powers: Dict[Tuple[Any, float], float] = {}
        self._router_powers: Dict[Tuple[Any, float], float] = {}
        # (spacing, area items) -> (floorplan, has adjacencies), shared
        # across templates: equal area signatures floorplan identically.
        self._floorplans: Dict[
            Tuple[float, Tuple[Tuple[str, float], ...]], Tuple[FloorplanResult, bool]
        ] = {}
        # (final area, node) -> (die yield, wasted wafer area per die)
        self._die_terms: Dict[Tuple[float, float], Tuple[float, float]] = {}
        # (transistors, node, iterations) -> design energy in kWh
        self._design_kwh: Dict[Tuple[float, float, int], float] = {}
        # iterations -> inter-die communication design energy in kWh
        self._comm_kwh: Dict[int, float] = {}
        # (base area, node) -> die cost in USD
        self._die_costs: Dict[Tuple[float, float], float] = {}

    # -- shared-cache helpers -------------------------------------------------------
    def base_system(self, base_kind: str, base_ref: str) -> ChipletSystem:
        """The (cached) base system a template builds on."""
        key = (base_kind, base_ref)
        system = self._bases.get(key)
        if system is None:
            system = resolve_base(base_kind, base_ref)
            self._bases[key] = system
        return system

    def _floorplan(
        self,
        planner: SlicingFloorplanner,
        areas: Dict[str, float],
        need_adjacencies: bool,
    ) -> FloorplanResult:
        key = (planner.spacing_mm, tuple(areas.items()))
        entry = self._floorplans.get(key)
        cache = self.persistent_cache
        if entry is None:
            # Floorplans are pure geometry: independent of config and table,
            # so their disk entries are keyed on the signature alone and
            # shared across every compiler mounting the directory.
            if cache is not None:
                cached = cache.load("floorplan", None, key + (need_adjacencies,))
                if cached is not None:
                    self._floorplans[key] = (cached, need_adjacencies)
                    return cached
            floorplan = planner.floorplan(areas, adjacencies=need_adjacencies)
            self._floorplans[key] = (floorplan, need_adjacencies)
            if cache is not None:
                cache.store("floorplan", None, key + (need_adjacencies,), floorplan)
            return floorplan
        floorplan, has_adjacencies = entry
        if need_adjacencies and not has_adjacencies:
            floorplan = planner.adjacencies_of(floorplan)
            self._floorplans[key] = (floorplan, True)
            if cache is not None:
                cache.store("floorplan", None, key + (True,), floorplan)
        return floorplan

    def _packaging_model(self, spec: Any) -> PackagingModel:
        model = self._packaging_models.get(spec)
        if model is None:
            # The intensity of this model instance is never used: the
            # compiler only reads its geometry, yield and power helpers.
            model = build_packaging_model(
                spec,
                table=self.estimator.table,
                package_carbon_source=self.config.package_carbon_source,
                router_spec=self.config.router_spec,
            )
            self._packaging_models[spec] = model
        return model

    def _packaging_spec(self, packaging: Optional[Mapping[str, Any]], base: ChipletSystem):
        if packaging is None:
            return base.packaging
        signature = packaging_signature(packaging)
        spec = self._specs.get(signature)
        if spec is None:
            spec = spec_from_dict(dict(packaging))
            self._specs[signature] = spec
        return spec

    # -- template compilation ---------------------------------------------------------
    def compile(
        self,
        base_kind: str,
        base_ref: str,
        nodes: Optional[Tuple[float, ...]],
        packaging: Optional[Mapping[str, Any]],
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> CompiledSystem:
        """Compile (or fetch) the template for one scenario family.

        ``overrides`` is the scenario's registered-axis override mapping
        (:mod:`repro.axes`): system-target axes are applied to the base
        system before compilation, and the axis ``compile_terms`` hooks
        key the template cache.  Config-target axes must already be baked
        into this compiler's ``config`` — the
        :class:`repro.fastpath.batch.BatchEstimator` keeps one compiler
        per config-override signature.
        """
        key: TemplateKey = (
            base_kind,
            base_ref,
            nodes,
            packaging_signature(packaging),
            template_overrides_signature(overrides) if overrides else None,
        )
        template = self._templates.get(key)
        if template is None:
            self.template_misses += 1
            template = self._load_persistent(key)
            if template is None:
                template = self._compile(
                    base_kind, base_ref, nodes, packaging, overrides
                )
                self.compiles += 1
                self._store_persistent(key, template)
            self._templates[key] = template
        else:
            self.template_hits += 1
        return template

    # -- persistent cache -------------------------------------------------------------
    def _template_disk_key(self, key: TemplateKey) -> Tuple:
        """The on-disk address material of a template key.

        Templates built on a design directory depend on its files, not just
        its path, so the key grows a content fingerprint: an edited design
        never replays a stale entry.
        """
        base_kind, base_ref = key[0], key[1]
        if base_kind != "design_dir":
            return key
        fingerprint = self._dir_fingerprints.get(base_ref)
        if fingerprint is None:
            import hashlib
            from pathlib import Path

            entries = []
            root = Path(base_ref)
            for path in sorted(p for p in root.rglob("*") if p.is_file()):
                entries.append(
                    (
                        path.relative_to(root).as_posix(),
                        hashlib.sha256(path.read_bytes()).hexdigest(),
                    )
                )
            fingerprint = tuple(entries)
            self._dir_fingerprints[base_ref] = fingerprint
        return key + (fingerprint,)

    def _load_persistent(self, key: TemplateKey) -> Optional[CompiledSystem]:
        cache = self.persistent_cache
        if cache is None:
            return None
        template = cache.load("template", self._disk_salt, self._template_disk_key(key))
        if template is None:
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return template

    def _store_persistent(self, key: TemplateKey, template: CompiledSystem) -> None:
        if self.persistent_cache is not None:
            # Stored straight after compilation, before any evaluation, so
            # the per-source term cache ships empty and entries stay lean.
            self.persistent_cache.store(
                "template", self._disk_salt, self._template_disk_key(key), template
            )

    def _compile(
        self,
        base_kind: str,
        base_ref: str,
        nodes: Optional[Tuple[float, ...]],
        packaging: Optional[Mapping[str, Any]],
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> CompiledSystem:
        # System-target axis overrides transform the base system before any
        # geometry is derived — mirroring Scenario.build_system, which
        # applies them first on the scalar path.  Caches keyed on the base
        # (areas, cost) carry the override signature so an axis that
        # changes the chiplets themselves cannot poison shared entries.
        base_key = (base_kind, base_ref, system_overrides_signature(overrides))
        base = apply_system_overrides(
            self.base_system(base_kind, base_ref), overrides
        )
        estimator = self.estimator
        spec = self._packaging_spec(packaging, base)
        model = self._packaging_model(spec)
        chiplet_count = base.chiplet_count
        is_monolithic = chiplet_count == 1 or model.is_monolithic

        if nodes is not None:
            if len(nodes) != chiplet_count:
                raise ValueError(
                    f"expected {chiplet_count} nodes, got {len(nodes)}"
                )
            node_keys = tuple(_normalise_node_key(node) for node in nodes)
        else:
            node_keys = tuple(chiplet.node for chiplet in base.chiplets)
        node_values = tuple(float(node) for node in node_keys)

        # Geometry (estimator steps 1–3) with cross-template caches; this is
        # compute_geometry without materialising a retargeted ChipletSystem.
        final_areas: Dict[str, float] = {}
        final_area_values: List[float] = []
        transistor_counts: List[float] = []
        for chiplet, node_key, node_value in zip(base.chiplets, node_keys, node_values):
            area_key = (base_key, chiplet.name, node_value)
            cached = self._areas.get(area_key)
            if cached is None:
                cached = (
                    chiplet.area_at_node(estimator.scaling, node_key),
                    chiplet.transistor_count(estimator.scaling),
                )
                self._areas[area_key] = cached
            base_area, transistors = cached
            transistor_counts.append(transistors)
            overhead_key = (spec, node_value, chiplet_count)
            overhead = self._overheads.get(overhead_key)
            if overhead is None:
                probe = PackagedChiplet(
                    name=chiplet.name,
                    area_mm2=base_area,
                    node=node_value,
                    design_type=chiplet.design_type,  # type: ignore[arg-type]
                )
                overhead = model.chiplet_area_overhead_mm2(probe, chiplet_count)
                self._overheads[overhead_key] = overhead
            final_area = base_area + overhead
            final_areas[chiplet.name] = final_area
            final_area_values.append(final_area)
        floorplan = self._floorplan(
            estimator.floorplanner, final_areas, model.needs_adjacencies
        )
        packaging_terms = self._compile_packaging(
            model, spec, node_keys, tuple(final_area_values), floorplan
        )

        # Per-chiplet manufacturing and design coefficients.
        design_model = estimator.design_model
        table = estimator.table
        chiplet_terms: List[ChipletTerms] = []
        for chiplet, node_key, node_value, transistors, final_area in zip(
            base.chiplets, node_keys, node_values, transistor_counts, final_area_values
        ):
            die_key = (final_area, node_value)
            die_terms = self._die_terms.get(die_key)
            if die_terms is None:
                die_terms = (
                    estimator.manufacturing.yield_model.die_yield(final_area, node_key),
                    estimator.manufacturing.wafer.utilisation(
                        final_area
                    ).wasted_area_per_die_mm2,
                )
                self._die_terms[die_key] = die_terms
            yield_value, wasted_area = die_terms
            record = table.get(node_key)
            if chiplet.reused:
                design_kwh = 0.0
            else:
                kwh_key = (transistors, node_value, base.design_iterations)
                design_kwh = self._design_kwh.get(kwh_key)
                if design_kwh is None:
                    gates = gates_from_transistors(
                        transistors, design_model.transistors_per_gate
                    )
                    hours = design_model.spr_model.design_hours(
                        gates, node_key, base.design_iterations
                    )
                    design_kwh = hours * design_model.design_power_w / 1000.0
                    self._design_kwh[kwh_key] = design_kwh
            chiplet_terms.append(
                ChipletTerms(
                    name=chiplet.name,
                    final_area_mm2=final_area,
                    eff=record.equipment_efficiency,
                    epa=record.epa_kwh_per_cm2,
                    gas_g_cm2=record.gas_kg_per_cm2 * 1000.0,
                    material_g_cm2=record.material_kg_per_cm2 * 1000.0,
                    yield_value=yield_value,
                    wasted_area_mm2=wasted_area,
                    design_energy_kwh=design_kwh,
                    reused=chiplet.reused,
                    explicit_volume=chiplet.manufactured_volume,
                )
            )

        # Inter-die communication design effort (None for monolithic systems).
        comm_design_kwh: Optional[float] = None
        if not is_monolithic and DEFAULT_COMM_DESIGN_GATES > 0:
            comm_design_kwh = self._comm_kwh.get(base.design_iterations)
            if comm_design_kwh is None:
                comm_hours = design_model.spr_model.design_hours(
                    DEFAULT_COMM_DESIGN_GATES, 7, base.design_iterations
                )
                comm_design_kwh = comm_hours * design_model.design_power_w / 1000.0
                self._comm_kwh[base.design_iterations] = comm_design_kwh

        # Operational terms (estimator step 7): _effective_operating_spec
        # replicated over the compiled geometry — the annual footprint and
        # the power figure are lifetime- and fab-source-independent.
        operating = base.operating.with_comm_power(packaging_terms.comm_power_w)
        if operating.annual_energy_kwh is None and operating.average_power_w is None:
            total_area = sum(final_areas.values())
            updates: Dict[str, object] = {}
            energy_model = estimator.energy_model
            if operating.leakage_current_a is None:
                updates["leakage_current_a"] = sum(
                    energy_model.leakage_current_a(final_areas[c.name], node)
                    for c, node in zip(base.chiplets, node_keys)
                )
            if operating.load_capacitance_f is None:
                updates["load_capacitance_f"] = sum(
                    energy_model.load_capacitance_f(final_areas[c.name], node)
                    for c, node in zip(base.chiplets, node_keys)
                )
            if operating.vdd_v is None and total_area > 0:
                updates["vdd_v"] = sum(
                    table.get(node).vdd_v * final_areas[c.name]
                    for c, node in zip(base.chiplets, node_keys)
                ) / total_area
            if updates:
                operating = dataclasses.replace(operating, **updates)
        operational = estimator.operational_model.evaluate(operating)

        silicon_area = sum(final_area_values)

        cost_terms = (
            self._compile_cost(base_key, base, node_values) if self.cost_model else None
        )

        return CompiledSystem(
            system_name=base.name,
            node_values=node_values,
            base_volume=base.system_volume,
            base_lifetime=base.operating.lifetime_years,
            chiplets=tuple(chiplet_terms),
            packaging=packaging_terms,
            comm_design_energy_kwh=comm_design_kwh,
            annual_cfp_g=operational.annual_cfp_g,
            power_w=operational.energy.total_power_w,
            silicon_area_mm2=silicon_area,
            cost=cost_terms,
        )

    def _compile_packaging(
        self,
        model: PackagingModel,
        spec: Any,
        node_keys: Tuple[Any, ...],
        area_values: Tuple[float, ...],
        floorplan: FloorplanResult,
    ) -> PackagingTerms:
        """``model.compile_terms`` with per-(spec, node) power caches."""
        phy_powers = self._phy_powers
        router_powers = self._router_powers

        def phy_power(node: Any) -> float:
            key = (spec, float(node))
            value = phy_powers.get(key)
            if value is None:
                value = model.phy_model.average_power_w(node, lanes=spec.phy_lanes)
                phy_powers[key] = value
            return value

        def router_power(node: Any) -> float:
            key = (spec, float(node))
            value = router_powers.get(key)
            if value is None:
                value = model.router_power_w(
                    node, injection_rate=spec.router_injection_rate
                )
                router_powers[key] = value
            return value

        return model.compile_terms(
            node_keys, area_values, floorplan, phy_power, router_power
        )

    def _compile_cost(
        self,
        base_key: Tuple[str, str, Optional[Tuple]],
        base: ChipletSystem,
        node_values: Tuple[float, ...],
    ) -> CostTerms:
        """Flatten :meth:`ChipletCostModel.estimate` for this template.

        Mirrors the scalar model exactly: per-chiplet die costs and the
        assembly cost are volume-independent, NRE-sharing design groups keep
        their insertion order and fold member volumes left to right.
        """
        cost_model = self.cost_model
        assert cost_model is not None
        areas: Dict[str, float] = {}
        die_cost_sum = 0.0
        group_order: List[Tuple[str, float, float]] = []
        group_members: Dict[Tuple[str, float, float], List[Optional[float]]] = {}
        group_meta: Dict[Tuple[str, float, float], Tuple[float, bool]] = {}
        for chiplet, node_value in zip(base.chiplets, node_values):
            # Base areas (no packaging overhead), identical to the cached
            # estimator values: both scaling models share the table.
            base_area, transistors = self._areas[(base_key, chiplet.name, node_value)]
            areas[chiplet.name] = base_area
            die_key = (base_area, node_value)
            die_cost = self._die_costs.get(die_key)
            if die_cost is None:
                die_cost = cost_model.die_cost_usd(base_area, node_value)
                self._die_costs[die_key] = die_cost
            die_cost_sum += die_cost
            signature = (
                chiplet.design_type.value,  # type: ignore[union-attr]
                node_value,
                round(transistors, 3),
            )
            if signature not in group_members:
                group_order.append(signature)
                group_members[signature] = []
                group_meta[signature] = (transistors, True)
            group_members[signature].append(chiplet.manufactured_volume)
            transistors_first, all_reused = group_meta[signature]
            group_meta[signature] = (transistors_first, all_reused and chiplet.reused)

        package_area = self._floorplan(
            cost_model.floorplanner, areas, need_adjacencies=False
        ).package_area_mm2
        assembly = cost_model.assembly_cost_usd(package_area, len(base.chiplets))
        fixed = die_cost_sum + assembly

        groups: List[CostGroupTerms] = []
        for signature in group_order:
            transistors_first, all_reused = group_meta[signature]
            # nre_cost_usd: (mask set + design) / volume; the numerator is
            # volume-independent, so precompute the sum with the same ops.
            masks = _lookup_by_node(MASK_SET_COST_USD, signature[1])
            gates = transistors_first / 6.25
            design = gates * DESIGN_COST_USD_PER_GATE
            groups.append(
                CostGroupTerms(
                    masks_plus_design_usd=masks + design,
                    reused=all_reused,
                    member_volumes=tuple(group_members[signature]),
                )
            )
        return CostTerms(fixed_usd=fixed, groups=tuple(groups))
