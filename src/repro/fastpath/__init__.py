"""Compiled batch fast path for CFP estimation.

Analyses a :class:`~repro.core.system.ChipletSystem` template once (area
scaling, packaging overheads, floorplan geometry, per-chiplet manufacturing/
design/operational coefficients) and then evaluates whole scenario batches
as plain arithmetic — bit-identical to the scalar
:class:`~repro.core.estimator.EcoChip` pipeline.  Used by
``SweepEngine(backend="batch")`` and ``eco-chip sweep --backend batch``.
"""

from repro.fastpath.batch import (
    NUMPY_MIN_GROUP,
    BatchEstimator,
    group_scenarios,
)
from repro.fastpath.compiled import (
    ChipletTerms,
    CompiledSystem,
    CostTerms,
    PackagingTerms,
    SourceTerms,
    TemplateCompiler,
    compile_packaging,
    packaging_signature,
)
from repro.fastpath.diskcache import (
    CACHE_FORMAT_VERSION,
    DiskCompileCache,
    as_disk_cache,
)

__all__ = [
    "BatchEstimator",
    "CACHE_FORMAT_VERSION",
    "ChipletTerms",
    "CompiledSystem",
    "CostTerms",
    "DiskCompileCache",
    "NUMPY_MIN_GROUP",
    "PackagingTerms",
    "SourceTerms",
    "TemplateCompiler",
    "as_disk_cache",
    "compile_packaging",
    "group_scenarios",
    "packaging_signature",
]
