"""Batch evaluation of sweep scenarios over compiled templates.

:class:`BatchEstimator` groups scenarios by their template key (base system,
node assignment, packaging architecture), compiles each template once via
:class:`repro.fastpath.compiled.TemplateCompiler`, and evaluates every
scenario of a group as flat arithmetic over the compiled coefficients.  The
records it produces are bit-identical (exact float equality, same keys in
the same order) to the scalar path's
:func:`repro.sweep.engine.make_record` output.

Two evaluation backends produce the same bits:

* a dependency-free pure-Python loop (always available), and
* a NumPy backend (``pip install eco-chip-repro[fast]``) that evaluates a whole
  group as element-wise operations over preallocated arrays.  IEEE-754
  binary64 element-wise arithmetic matches Python's float arithmetic
  operation for operation, so the backends are interchangeable at the bit
  level; NumPy is only engaged for groups large enough to amortise array
  construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.axes import (
    apply_config_overrides,
    config_overrides_signature,
    overrides_json,
    template_overrides_signature,
)
from repro.core.estimator import EstimatorConfig
from repro.fastpath.compiled import (
    CompiledSystem,
    SourceTerms,
    TemplateCompiler,
    packaging_signature,
)
from repro.packaging.base import _TO_MM2
from repro.sweep.engine import _source_name
from repro.sweep.spec import Scenario, packaging_params_json
from repro.technology.carbon_sources import carbon_intensity
from repro.technology.nodes import TechnologyTable

try:  # optional acceleration: the eco-chip-repro[fast] extra
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

Record = Dict[str, Any]

#: Minimum group size for which the NumPy backend beats array-construction
#: overhead (smaller groups always use the pure-Python loop).
NUMPY_MIN_GROUP = 16


def group_scenarios(
    scenarios: Sequence[Scenario],
) -> List[Tuple[Tuple, List[Tuple[int, Scenario]]]]:
    """Group scenarios by template key, preserving first-occurrence order.

    Returns ``[(template_key, [(position, scenario), ...]), ...]`` where
    ``position`` is the scenario's index in the input sequence (*not* its
    grid index, which survives resume filtering).
    """
    # Packaging and override dicts are shared between the scenarios of one
    # spec expansion, so canonicalising per object identity avoids
    # re-hashing the same mapping thousands of times.  The id caches are
    # only valid while the scenarios (and therefore the dicts) are alive,
    # i.e. within this call.
    signature_by_id: Dict[int, Optional[Tuple]] = {}
    override_sig_by_id: Dict[int, Optional[Tuple]] = {}
    groups: Dict[Tuple, List[Tuple[int, Scenario]]] = {}
    for position, scenario in enumerate(scenarios):
        packaging = scenario.packaging
        if packaging is None:
            signature = None
        else:
            signature = signature_by_id.get(id(packaging))
            if signature is None:
                signature = packaging_signature(packaging)
                signature_by_id[id(packaging)] = signature
        overrides = scenario.overrides
        if not overrides:
            override_sig = None
        else:
            override_sig = override_sig_by_id.get(id(overrides))
            if override_sig is None:
                override_sig = template_overrides_signature(overrides)
                override_sig_by_id[id(overrides)] = override_sig
        key = (
            scenario.base_kind,
            scenario.base_ref,
            scenario.nodes,
            signature,
            override_sig,
        )
        members = groups.get(key)
        if members is None:
            groups[key] = members = []
        members.append((position, scenario))
    return list(groups.items())


class _ConfigContext:
    """One compilation context per distinct estimator configuration.

    Config-target axis overrides (:mod:`repro.axes`) produce distinct
    :class:`EstimatorConfig` objects; each gets its own template compiler
    (template coefficients depend on the config — wafer diameter, defect
    scale, router spec, ...) plus the config-derived evaluation constants.
    """

    __slots__ = (
        "compiler",
        "default_fab_label",
        "default_intensities",
        "include_design",
        "include_wafer_waste",
    )

    def __init__(
        self,
        config: Optional[EstimatorConfig],
        table: Optional[TechnologyTable],
        include_cost: bool,
        persistent_cache: Optional[Any] = None,
    ):
        self.compiler = TemplateCompiler(
            config=config,
            table=table,
            include_cost=include_cost,
            persistent_cache=persistent_cache,
        )
        config = self.compiler.config
        self.default_fab_label = _source_name(config.fab_carbon_source)
        self.default_intensities = (
            carbon_intensity(config.fab_carbon_source),
            carbon_intensity(config.package_carbon_source),
            carbon_intensity(config.design_carbon_source),
        )
        self.include_design = config.include_design
        self.include_wafer_waste = config.include_wafer_waste


class BatchEstimator:
    """Evaluates scenario batches against compiled templates.

    Args:
        config: Estimator configuration shared by all scenarios (scenario
            ``fab_source`` overrides the three energy sources, and
            config-target axis overrides derive per-scenario configs,
            exactly like the scalar sweep path).
        table: Technology table override.
        include_cost: Add ``cost_usd`` (the Chiplet-Actuary-style dollar
            cost) to every record.
        use_numpy: ``True`` forces the NumPy backend for every group,
            ``False`` forces the pure-Python loop, ``None`` (default) picks
            NumPy automatically when it is installed and a group is large
            enough to benefit.
        persistent_cache: Optional on-disk compile cache
            (:class:`repro.fastpath.DiskCompileCache` or a directory path),
            mounted by every config context's template compiler: compiled
            templates and floorplans persist across processes, runs and
            server restarts, and records stay bit-identical to a cold
            compile.  See :mod:`repro.fastpath.diskcache`.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        table: Optional[TechnologyTable] = None,
        include_cost: bool = True,
        use_numpy: Optional[bool] = None,
        persistent_cache: Optional[Any] = None,
    ):
        if use_numpy and _np is None:
            raise ImportError(
                "use_numpy=True but numpy is not installed; "
                "install the optional extra: pip install eco-chip-repro[fast]"
            )
        from repro.fastpath.diskcache import as_disk_cache

        self._table = table
        self.include_cost = include_cost
        self.use_numpy = use_numpy
        #: Shared by every config context (one disk cache object, one set
        #: of cache-wide counters, one mount point).
        self.persistent_cache = as_disk_cache(persistent_cache)
        self._base_context = _ConfigContext(
            config, table, include_cost, persistent_cache=self.persistent_cache
        )
        #: Config-override signature -> compilation context; ``None`` is
        #: the override-free base configuration.
        self._contexts: Dict[Optional[Tuple], _ConfigContext] = {
            None: self._base_context
        }
        #: Base-config template compiler (kept as an attribute for callers
        #: that inspect or pre-warm the override-free cache).
        self.compiler = self._base_context.compiler

    def _context_for(self, scenario: Scenario) -> _ConfigContext:
        """The compilation context for a scenario's config-axis overrides."""
        if not scenario.overrides:  # hot path: override-free grids
            return self._base_context
        signature = config_overrides_signature(scenario.overrides)
        context = self._contexts.get(signature)
        if context is None:
            config = apply_config_overrides(
                self._base_context.compiler.config, scenario.overrides
            )
            context = _ConfigContext(
                config,
                self._table,
                self.include_cost,
                persistent_cache=self.persistent_cache,
            )
            self._contexts[signature] = context
        return context

    @property
    def numpy_available(self) -> bool:
        """True when the NumPy backend can be used in this environment."""
        return _np is not None

    def cache_stats(self) -> Dict[str, int]:
        """Aggregate template-cache counters across all config contexts.

        A process-wide estimator shared across server requests surfaces
        these through ``/v1/metrics``: ``template_hits`` /
        ``template_misses`` count :meth:`TemplateCompiler.compile` lookups,
        ``templates`` and ``contexts`` the resident cache sizes,
        ``compiles`` the full template compilations actually run (an
        in-memory miss satisfied by the persistent disk cache is not a
        compile), and ``disk_hits`` / ``disk_misses`` the persistent-cache
        probes (zeros when no ``persistent_cache`` is mounted).
        """
        contexts = list(self._contexts.values())
        return {
            "template_hits": sum(c.compiler.template_hits for c in contexts),
            "template_misses": sum(c.compiler.template_misses for c in contexts),
            "templates": sum(len(c.compiler._templates) for c in contexts),
            "contexts": len(contexts),
            "compiles": sum(c.compiler.compiles for c in contexts),
            "disk_hits": sum(c.compiler.disk_hits for c in contexts),
            "disk_misses": sum(c.compiler.disk_misses for c in contexts),
        }

    # -- public API -----------------------------------------------------------------
    def evaluate(self, scenarios: Iterable[Scenario]) -> List[Record]:
        """Records for ``scenarios``, in input order."""
        scenarios = list(scenarios)
        records: List[Optional[Record]] = [None] * len(scenarios)
        for key, members in group_scenarios(scenarios):
            group_records = self.evaluate_group(
                self.compile_for(members[0][1]), [s for _, s in members]
            )
            for (position, _), record in zip(members, group_records):
                records[position] = record
        return records  # type: ignore[return-value]

    def evaluate_scenario(self, scenario: Scenario) -> Record:
        """The record of one scenario, through the compiled-template cache.

        The single-scenario seam the resilience layer evaluates through:
        containment isolates failures per scenario, so a raising scenario
        must not take its whole template group down with it.  A group of
        one always uses the pure-Python backend, whose arithmetic is
        bit-identical to the NumPy group path, so records match
        :meth:`evaluate_group` exactly.
        """
        return self.evaluate_group(self.compile_for(scenario), [scenario])[0]

    def compile_for(self, scenario: Scenario) -> CompiledSystem:
        """The compiled template behind ``scenario``."""
        return self._context_for(scenario).compiler.compile(
            scenario.base_kind,
            scenario.base_ref,
            scenario.nodes,
            scenario.packaging,
            scenario.overrides,
        )

    def evaluate_group(
        self, template: CompiledSystem, scenarios: Sequence[Scenario]
    ) -> List[Record]:
        """Records for scenarios that all share ``template``."""
        context = self._context_for(scenarios[0])
        use_numpy = self.use_numpy
        if use_numpy is None:
            use_numpy = _np is not None and len(scenarios) >= NUMPY_MIN_GROUP
        if use_numpy:
            return self._evaluate_group_numpy(template, scenarios, context)
        return self._evaluate_group_pure(template, scenarios, context)

    # -- per-(template, fab source) terms ----------------------------------------------
    def source_terms(
        self,
        template: CompiledSystem,
        fab_source: Optional[str],
        context: Optional[_ConfigContext] = None,
    ) -> SourceTerms:
        """Terms that depend on the fab source but not on lifetime/volume."""
        if context is None:
            context = self._base_context
        terms = template.source_terms_cache.get(fab_source)
        if terms is not None:
            return terms
        if fab_source is None:
            fab_intensity, package_intensity, design_intensity = (
                context.default_intensities
            )
            label = context.default_fab_label
        else:
            fab_intensity = package_intensity = design_intensity = carbon_intensity(
                fab_source
            )
            label = fab_source

        include_waste = context.include_wafer_waste
        manufacturing_total = 0.0
        design_parts: List[Tuple[bool, float]] = []
        for chiplet in template.chiplets:
            # Eq. 6 / Eq. 5 closed form — operation order mirrors
            # CFPAModel.breakdown and ChipManufacturingModel.cfp_for_area.
            energy_g_cm2 = chiplet.eff * fab_intensity * chiplet.epa
            unyielded_cm2 = energy_g_cm2 + chiplet.gas_g_cm2 + chiplet.material_g_cm2
            die_cfp = unyielded_cm2 * _TO_MM2 / chiplet.yield_value * chiplet.final_area_mm2
            if include_waste:
                waste_cfp = unyielded_cm2 / 100.0 * chiplet.wasted_area_mm2
            else:
                waste_cfp = 0.0
            manufacturing_total += die_cfp + waste_cfp
            # Eq. 12 per-chiplet design CFP.
            if chiplet.reused:
                design_parts.append((True, 0.0))
            else:
                total_g = chiplet.design_energy_kwh * design_intensity
                if chiplet.explicit_volume is not None:
                    design_parts.append((True, total_g / chiplet.explicit_volume))
                else:
                    design_parts.append((False, total_g))

        package_cfp, comm_cfp = template.packaging.cfp(package_intensity)
        hi_total = package_cfp + comm_cfp
        if template.comm_design_energy_kwh is not None:
            comm_design_total = template.comm_design_energy_kwh * design_intensity
        else:
            comm_design_total = 0.0
        terms = SourceTerms(
            fab_label=label,
            manufacturing_total_g=manufacturing_total,
            hi_total_g=hi_total,
            design_parts=tuple(design_parts),
            comm_design_total_g=comm_design_total,
        )
        template.source_terms_cache[fab_source] = terms
        return terms

    # -- record assembly ---------------------------------------------------------------
    def _record(
        self,
        scenario: Scenario,
        template: CompiledSystem,
        terms: SourceTerms,
        lifetime: float,
        system_volume: float,
        total: float,
        embodied: float,
        design_used: float,
        lifetime_cfp: float,
        cost_usd: Optional[float],
    ) -> Record:
        # Key order matches scenario.to_record() + make_record()'s update().
        record: Record = {
            "scenario": scenario.index,
            "base": scenario.base_ref,
            "nodes": list(template.node_values),
            "packaging": template.architecture,
            "packaging_params": packaging_params_json(scenario.packaging),
            "fab_source": terms.fab_label,
            "lifetime_years": lifetime,
            "system_volume": system_volume,
            "overrides": overrides_json(scenario.overrides) if scenario.overrides else None,
            "system": template.system_name,
            "total_carbon_g": total,
            "embodied_carbon_g": embodied,
            "manufacturing_carbon_g": terms.manufacturing_total_g,
            "design_carbon_g": design_used,
            "hi_carbon_g": terms.hi_total_g,
            "operational_carbon_g": lifetime_cfp,
            "silicon_area_mm2": template.silicon_area_mm2,
            "package_area_mm2": template.package_area_mm2,
            "power_w": template.power_w,
        }
        if cost_usd is not None:
            record["cost_usd"] = cost_usd
        return record

    # -- pure-Python backend -------------------------------------------------------------
    def _evaluate_group_pure(
        self,
        template: CompiledSystem,
        scenarios: Sequence[Scenario],
        context: Optional[_ConfigContext] = None,
    ) -> List[Record]:
        if context is None:
            context = self._base_context
        include_design = context.include_design
        annual = template.annual_cfp_g
        base_volume = template.base_volume
        base_lifetime = template.base_lifetime
        cost = template.cost
        records: List[Record] = []
        for scenario in scenarios:
            terms = self.source_terms(template, scenario.fab_source, context)
            system_volume = (
                scenario.system_volume
                if scenario.system_volume is not None
                else base_volume
            )
            lifetime = (
                scenario.lifetime_years
                if scenario.lifetime_years is not None
                else base_lifetime
            )
            # Eq. 12 amortisation: sum(per-chiplet amortised) + comm / NS.
            amortised = 0.0
            for is_fixed, value in terms.design_parts:
                amortised = amortised + (value if is_fixed else value / system_volume)
            design_total = amortised + terms.comm_design_total_g / system_volume
            design_used = design_total if include_design else 0.0
            # Eqs. 1–2 totals, in the estimator's operation order.
            lifetime_cfp = annual * lifetime
            embodied = terms.manufacturing_total_g + design_used + terms.hi_total_g
            total = embodied + lifetime_cfp
            cost_usd = cost.total_usd(system_volume) if cost is not None else None
            records.append(
                self._record(
                    scenario, template, terms, lifetime, system_volume,
                    total, embodied, design_used, lifetime_cfp, cost_usd,
                )
            )
        return records

    # -- NumPy backend -----------------------------------------------------------------
    def _evaluate_group_numpy(
        self,
        template: CompiledSystem,
        scenarios: Sequence[Scenario],
        context: Optional[_ConfigContext] = None,
    ) -> List[Record]:
        assert _np is not None, "numpy backend requested without numpy installed"
        if context is None:
            context = self._base_context
        count = len(scenarios)
        terms_list = [
            self.source_terms(template, scenario.fab_source, context)
            for scenario in scenarios
        ]
        base_volume = template.base_volume
        base_lifetime = template.base_lifetime
        system_volume = _np.array(
            [
                s.system_volume if s.system_volume is not None else base_volume
                for s in scenarios
            ],
            dtype=_np.float64,
        )
        lifetime = _np.array(
            [
                s.lifetime_years if s.lifetime_years is not None else base_lifetime
                for s in scenarios
            ],
            dtype=_np.float64,
        )
        manufacturing = _np.array(
            [t.manufacturing_total_g for t in terms_list], dtype=_np.float64
        )
        hi = _np.array([t.hi_total_g for t in terms_list], dtype=_np.float64)
        comm_design = _np.array(
            [t.comm_design_total_g for t in terms_list], dtype=_np.float64
        )

        # Element-wise accumulation in chiplet order — identical to the
        # scalar fold (IEEE binary64 operations in the same sequence).
        amortised = _np.zeros(count, dtype=_np.float64)
        for chiplet_index in range(len(template.chiplets)):
            values = _np.array(
                [t.design_parts[chiplet_index][1] for t in terms_list],
                dtype=_np.float64,
            )
            fixed = terms_list[0].design_parts[chiplet_index][0]
            amortised = amortised + (values if fixed else values / system_volume)
        design_total = amortised + comm_design / system_volume
        if context.include_design:
            design_used = design_total
        else:
            design_used = _np.zeros(count, dtype=_np.float64)
        lifetime_cfp = template.annual_cfp_g * lifetime
        embodied = (manufacturing + design_used) + hi
        total = embodied + lifetime_cfp

        cost = template.cost
        cost_usd: Optional[Any] = None
        if cost is not None:
            nre_total = _np.zeros(count, dtype=_np.float64)
            for group in cost.groups:
                if group.reused:
                    continue
                volume = _np.zeros(count, dtype=_np.float64)
                for member in group.member_volumes:
                    volume = volume + (member if member is not None else system_volume)
                nre_total = nre_total + group.masks_plus_design_usd / volume
            cost_usd = cost.fixed_usd + nre_total

        records: List[Record] = []
        for index, scenario in enumerate(scenarios):
            records.append(
                self._record(
                    scenario,
                    template,
                    terms_list[index],
                    float(lifetime[index]),
                    float(system_volume[index]),
                    float(total[index]),
                    float(embodied[index]),
                    float(design_used[index]),
                    float(lifetime_cfp[index]),
                    float(cost_usd[index]) if cost_usd is not None else None,
                )
            )
        return records
