"""Content-addressed on-disk cache of compiled templates and floorplans.

Template compilation dominates the batch fast path's cold start: the
floorplanner, the per-architecture ``compile_terms`` closed forms and the
cost terms are all recomputed by every fresh process even though they are
pure functions of the template key.  :class:`DiskCompileCache` persists
those artifacts to a directory so they are shared across processes, runs
and server restarts: a sweep worker (or a restarted ``eco-chip serve``)
that compiles a template some earlier process already compiled loads the
pickled result instead of recomputing it.

Design:

* **Content-addressed.**  Every entry lives at
  ``root/<digest[:2]>/<digest>.pkl`` where the digest is the SHA-256 of the
  entry kind, a *salt* (estimator config, technology-table content hash via
  :func:`repro.technology.nodes.table_signature`, cost flag) and the same
  canonical key the in-memory caches use (:data:`TemplateKey` signatures
  for templates, ``(spacing, area items, adjacency flag)`` for floorplans).
  There is no index file and nothing to lock.
* **Versioned.**  The digest also folds in :data:`CACHE_FORMAT_VERSION`
  and :data:`repro.plugins.PLUGIN_API_VERSION`, so a format change, a
  plugin-API bump or a technology-table edit simply makes every old entry
  unreachable — stale entries are never *read*, only orphaned.
* **Crash-safe.**  Writes go to a unique temporary file in the same
  directory followed by :func:`os.replace`, so readers only ever see
  complete entries; concurrent writers of the same entry race benignly
  (last rename wins, all payloads are identical by construction).
* **Self-verifying.**  Each pickle carries its own key material; a load
  whose recorded key mismatches the request (hash collision, truncation
  that still unpickles) — or that fails to unpickle at all — counts as a
  miss and the entry is rewritten.

Results are bit-identical to a cold compile: unpickling floats restores
the exact IEEE-754 bits the compiler produced, and the evaluation
arithmetic downstream of the template is unchanged.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.plugins import PLUGIN_API_VERSION

__all__ = ["CACHE_FORMAT_VERSION", "DiskCompileCache", "as_disk_cache"]

#: Bump when the on-disk entry layout (or the meaning of cached values)
#: changes; old entries become unreachable, not misread.
CACHE_FORMAT_VERSION = 1


@lru_cache(maxsize=4096)
def _address(fmt: int, api: Any, kind: str, salt: Any, key: Any) -> Tuple[str, str]:
    """(token, relative path) of an entry — memoised.

    A long-running process (sweep workers, the serve loop, back-to-back
    estimators in one run) probes the same handful of keys over and over;
    the token repr and SHA-256 are pure functions of the arguments, so the
    cache trades a dict hit for a hash+repr per probe.  The format/API
    versions are part of the cache key rather than read from the globals
    here, so bumping either (including via monkeypatch) can never serve a
    stale address.
    """
    token = repr((fmt, api, kind, salt, key))
    digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
    return token, os.path.join(digest[:2], f"{digest}.pkl")


class DiskCompileCache:
    """A directory of pickled compile artifacts, shared across processes.

    Args:
        root: Cache directory (created, with parents, when missing).

    The instance itself is cheap and stateless apart from counters; every
    ``load``/``store`` goes straight to the filesystem, so any number of
    processes (and threads) may point at the same directory concurrently.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._root_str = str(self.root)
        #: Probe counters (GIL-atomic increments, mirroring the in-memory
        #: template counters) — surfaced through ``stats()``.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Unreadable entries tolerated as misses (corrupt/truncated pickle,
        #: unimportable plugin class, key mismatch).
        self.errors = 0

    # -- addressing -------------------------------------------------------------------
    @staticmethod
    def entry_token(kind: str, salt: Any, key: Any) -> str:
        """The canonical string a (kind, salt, key) triple is addressed by.

        ``repr`` of plain values (floats, strings, bools, ``None``, nested
        tuples) is deterministic across processes, which is exactly the
        value domain of the template/floorplan signatures.
        """
        return repr((CACHE_FORMAT_VERSION, PLUGIN_API_VERSION, kind, salt, key))

    @staticmethod
    def _address_for(kind: str, salt: Any, key: Any) -> Tuple[str, str]:
        """Memoised (token, relative path); falls back for unhashable keys."""
        try:
            return _address(CACHE_FORMAT_VERSION, PLUGIN_API_VERSION, kind, salt, key)
        except TypeError:
            token = repr((CACHE_FORMAT_VERSION, PLUGIN_API_VERSION, kind, salt, key))
            digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
            return token, os.path.join(digest[:2], f"{digest}.pkl")

    def path_for(self, kind: str, salt: Any, key: Any) -> Path:
        """Entry path of a (kind, salt, key) triple."""
        _token, relative = self._address_for(kind, salt, key)
        return self.root / relative

    # -- I/O --------------------------------------------------------------------------
    def load(self, kind: str, salt: Any, key: Any) -> Optional[Any]:
        """The cached value of a triple, or ``None`` (counts hit/miss).

        Every failure mode — missing file, torn/corrupt pickle, a value
        class that no longer imports, a key mismatch — degrades to a miss:
        the caller recomputes and overwrites the entry.
        """
        token, relative = self._address_for(kind, salt, key)
        try:
            with open(os.path.join(self._root_str, relative), "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss
            self.errors += 1
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("token") != token:
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def store(self, kind: str, salt: Any, key: Any, value: Any) -> None:
        """Persist ``value`` crash-safely (temp file + atomic rename).

        A failed write (full disk, permission loss) is swallowed: the cache
        is an accelerator, never a correctness dependency.
        """
        token, relative = self._address_for(kind, salt, key)
        path = os.path.join(self._root_str, relative)
        payload = {"token": token, "value": value}
        tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self.writes += 1
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- introspection ----------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of complete entries currently on disk."""
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def stats(self) -> Dict[str, int]:
        """Probe counters plus the on-disk entry count."""
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_writes": self.writes,
            "disk_errors": self.errors,
            "disk_entries": self.entry_count(),
        }

    # -- pickling (ships the mount point, not the counters) ---------------------------
    def __reduce__(self) -> Tuple[Any, Tuple[str]]:
        return (self.__class__, (str(self.root),))


def as_disk_cache(
    cache: Union["DiskCompileCache", str, Path, None],
) -> Optional[DiskCompileCache]:
    """Normalise a ``persistent_cache=`` argument: instance, directory or None."""
    if cache is None or isinstance(cache, DiskCompileCache):
        return cache
    if isinstance(cache, (str, Path)):
        return DiskCompileCache(cache)
    raise TypeError(
        f"persistent_cache must be a DiskCompileCache, a directory path or "
        f"None, got {type(cache).__name__}"
    )
