"""The documented public entry point: one :class:`Session` for everything.

A :class:`Session` binds an estimator configuration and an execution policy
(jobs, backend, multiprocessing context) once, and exposes the three things
users do with the library behind typed results:

* :meth:`Session.estimate` — one system, full
  :class:`~repro.core.results.SystemCarbonReport`;
* :meth:`Session.sweep` — a declarative scenario grid, evaluated on the
  scalar or compiled batch backend (bit-identical records either way),
  returning a :class:`SweepResult`;
* :meth:`Session.explore` — exhaustive design-space search with a Pareto
  front, returning an :class:`ExploreResult`.

Every call accepts registered-axis ``overrides`` (:mod:`repro.axes`), so
any estimator knob — wafer diameter, defect density, router spec, operating
conditions, or an out-of-tree axis — is one mapping away::

    from repro import Session

    session = Session(jobs=4, backend="batch")
    report = session.estimate("ga102-3chiplet",
                              overrides={"wafer_diameter_mm": 300.0})
    result = session.sweep({
        "testcases": ["ga102-3chiplet"],
        "wafer_diameter_mm": [300, 450],
        "defect_density_scale": [1.0, 1.5],
        "lifetimes": [2, 6],
    })
    print(result.best["total_carbon_g"])
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.axes import (
    apply_system_overrides,
    axis_names,
    config_overrides_signature,
    overrides_signature,
    validate_overrides,
)
from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.explorer import DesignPoint, DesignSpaceExplorer, pareto_front
from repro.core.results import SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.packaging.registry import spec_from_dict
from repro.search import SearchResult, SearchSpec, run_search
from repro.sweep.engine import (
    Record,
    SweepEngine,
    SweepSummary,
    derive_scenario_config,
)
from repro.sweep.spec import Scenario, SweepSpec, packaging_signature
from repro.sweep.store import (
    SweepRow,
    completed_scenario_ids,
    load_records,
    open_store,
    repair_torn_tail,
    rows_from_records,
)
from repro.technology.nodes import TechnologyTable, table_signature
from repro.testcases.registry import get_testcase

__all__ = [
    "ExploreResult",
    "SearchResult",
    "SearchSpec",
    "Session",
    "SweepResult",
    "sweep_cache_key",
]


def sweep_cache_key(
    scenarios: Sequence[Scenario],
    config: EstimatorConfig,
    include_cost: bool,
    table: Optional[TechnologyTable] = None,
) -> str:
    """Canonical cache key of a sweep: its scenarios plus evaluation context.

    Two submissions share a key exactly when every scenario's
    value-determining fields match (base, nodes, canonical packaging and
    axis-override signatures, fab source, lifetime, volume — the same
    signatures the engines key their own caches on) *and* the estimator
    context (config, cost flag, technology table) matches, which is
    precisely the condition under which both backends produce bit-identical
    records.  Used by :class:`Session` when a ``result_cache`` is attached
    (:class:`repro.serve.cache.ResultCache`) so identical re-submissions
    are served without re-evaluating anything.
    """
    hasher = hashlib.sha256()
    # Tables are keyed by *content*, never by object identity: CPython
    # reuses addresses after garbage collection, so an id()-based key would
    # let a different table built at a recycled address silently replay a
    # stale sweep.  Content hashing also lets a verbatim copy of the
    # built-in table share its entries — the results are bit-identical.
    table_key = table_signature(table)
    hasher.update(repr((repr(config), bool(include_cost), table_key)).encode("utf-8"))
    for scenario in scenarios:
        hasher.update(
            repr(
                (
                    scenario.base_kind,
                    scenario.base_ref,
                    scenario.nodes,
                    packaging_signature(scenario.packaging),
                    scenario.fab_source,
                    scenario.lifetime_years,
                    scenario.system_volume,
                    overrides_signature(scenario.overrides),
                )
            ).encode("utf-8")
        )
    return hasher.hexdigest()

#: What :meth:`Session.estimate` / :meth:`Session.explore` accept as a
#: system: a built system, a testcase name, or a design-directory path.
SystemLike = Union[ChipletSystem, str, Path]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Typed outcome of :meth:`Session.sweep`.

    Attributes:
        spec: The (expanded-from) sweep spec.
        summary: Engine summary — counts, timing, backend, best record.
        records: Every flattened record, in scenario order (empty when the
            sweep ran with ``collect_records=False``).
    """

    spec: SweepSpec
    summary: SweepSummary
    records: Tuple[Record, ...] = ()

    @property
    def best(self) -> Optional[Record]:
        """Record with the lowest ``total_carbon_g``."""
        return self.summary.best

    def rows(self) -> List[SweepRow]:
        """Records wrapped for the Pareto/objective tooling."""
        return rows_from_records(self.records)

    def pareto(
        self, objectives: Sequence[str], on_nan: str = "exclude"
    ) -> List[SweepRow]:
        """Pareto-optimal rows under the named record metrics.

        ``on_nan`` has :func:`repro.core.explorer.pareto_front` semantics:
        ``"exclude"`` (default) drops NaN-bearing rows with a warning,
        ``"raise"`` errors on them — the same defined NaN behaviour the
        serve layer's ``/pareto`` endpoint exposes.
        """
        return pareto_front(self.rows(), objectives, on_nan=on_nan)


@dataclasses.dataclass(frozen=True)
class ExploreResult:
    """Typed outcome of :meth:`Session.explore`.

    Attributes:
        points: Every evaluated candidate, in enumeration order.
        front: Pareto-optimal subset under ``objectives``.
        objectives: Objectives the front was computed under.
    """

    points: Tuple[DesignPoint, ...]
    front: Tuple[DesignPoint, ...]
    objectives: Tuple[str, ...]

    @property
    def best(self) -> DesignPoint:
        """Single best point under the first objective.

        Ties resolve by point label (not enumeration order), so equal-valued
        candidates name the same winner on every backend and jobs count.
        """
        objective = self.objectives[0]
        return min(self.points, key=lambda p: (p.objective(objective), p.label))


class Session:
    """Facade unifying estimate / sweep / explore behind one object.

    Args:
        config: Estimator configuration shared by every call (axis
            ``overrides`` derive per-call configs from it).
        table: Technology table override.
        jobs: Worker processes for sweeps and exploration (``1`` = serial).
        backend: Sweep backend, ``"scalar"`` or ``"batch"`` (bit-identical
            records, batch is much faster on repetitive grids).
        include_cost: Add ``cost_usd`` to sweep records and cost reports to
            explore points.
        memoize: Memoise the scalar backend's hot kernels.
        mp_context: Multiprocessing start method for worker pools.
        result_cache: Optional sweep result cache (an object with
            ``get(key) -> records | None`` and ``put(key, records)``, e.g.
            :class:`repro.serve.cache.ResultCache`).  When attached,
            :meth:`sweep` keys each run via :func:`sweep_cache_key` and
            serves identical re-submissions from memory — replaying the
            cached records into ``out`` — instead of re-evaluating.
        batch_estimator: Optional shared
            :class:`repro.fastpath.BatchEstimator` (``backend="batch"``,
            ``jobs=1`` only) so a long-lived process keeps one compiled-
            template cache across sessions and requests.
        compile_cache: Persistent on-disk compile cache for the batch
            backend — a directory path or a
            :class:`repro.fastpath.DiskCompileCache` — mounted on the
            sweep engine (and its worker processes when ``jobs>1``), so
            compiled templates survive across processes and runs.
            Mutually exclusive with ``batch_estimator``.
        resilience: Optional
            :class:`~repro.resilience.ResiliencePolicy` — contain
            per-scenario failures as structured error records (or retry
            them), supervise worker pools, and bound hung scenarios.
            ``None`` keeps the historical fail-fast behaviour.
        chaos: Optional :class:`~repro.resilience.ChaosPlan` injecting
            deterministic faults (tests only).

    Raises:
        ValueError: invalid ``jobs``, ``backend`` or ``mp_context``.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        *,
        table: Optional[TechnologyTable] = None,
        jobs: int = 1,
        backend: str = "scalar",
        include_cost: bool = True,
        memoize: bool = True,
        mp_context: Optional[str] = None,
        result_cache: Optional[Any] = None,
        batch_estimator: Optional[Any] = None,
        compile_cache: Optional[Any] = None,
        resilience: Optional[Any] = None,
        chaos: Optional[Any] = None,
    ):
        if config is not None and not isinstance(config, EstimatorConfig):
            raise TypeError(
                f"config must be an EstimatorConfig, got {type(config).__name__}"
            )
        self.config = config if config is not None else EstimatorConfig()
        self.table = table
        self.include_cost = include_cost
        # The engine constructor validates jobs/backend/mp_context eagerly.
        self.engine = SweepEngine(
            jobs=jobs,
            memoize=memoize,
            config=self.config,
            backend=backend,
            include_cost=include_cost,
            mp_context=mp_context,
            table=table,
            batch_estimator=batch_estimator,
            compile_cache=compile_cache,
            resilience=resilience,
            chaos=chaos,
        )
        self.result_cache = result_cache
        self._estimators: Dict[Tuple[Optional[str], Optional[Tuple]], EcoChip] = {}

    # -- introspection ----------------------------------------------------------------
    @property
    def jobs(self) -> int:
        """Worker processes sweeps and exploration fan out over."""
        return self.engine.jobs

    @property
    def backend(self) -> str:
        """Sweep evaluation backend."""
        return self.engine.backend

    def axes(self) -> List[str]:
        """Names of every registered sweep axis (built-in and plugins)."""
        return axis_names()

    # -- resolution helpers -----------------------------------------------------------
    def system(self, system: SystemLike) -> ChipletSystem:
        """Resolve a system reference: built system, testcase name or
        design-directory path."""
        if isinstance(system, ChipletSystem):
            return system
        if isinstance(system, Path) or (
            isinstance(system, str) and Path(system).is_dir()
        ):
            from repro.io.loaders import load_design_directory

            return load_design_directory(system).system
        if isinstance(system, str):
            return get_testcase(system)  # raises KeyError listing testcases
        raise TypeError(
            f"system must be a ChipletSystem, testcase name or design "
            f"directory, got {type(system).__name__}"
        )

    def _estimator(
        self, fab_source: Optional[str], overrides: Optional[Mapping[str, Any]]
    ) -> EcoChip:
        key = (fab_source, config_overrides_signature(overrides))
        estimator = self._estimators.get(key)
        if estimator is None:
            # Same scenario→config semantics as the sweep engine's scalar
            # evaluator, so estimate() matches sweep records bit for bit.
            config = derive_scenario_config(self.config, fab_source, overrides)
            estimator = EcoChip(config=config, table=self.table)
            self._estimators[key] = estimator
        return estimator

    # -- estimate ---------------------------------------------------------------------
    def estimate(
        self,
        system: SystemLike,
        *,
        overrides: Optional[Mapping[str, Any]] = None,
        fab_source: Optional[str] = None,
    ) -> SystemCarbonReport:
        """Full carbon report of one system.

        Args:
            system: Built system, testcase name or design directory.
            overrides: Registered-axis overrides (``{axis: value}``);
                system-target axes transform the system, config-target axes
                derive a per-call estimator configuration.
            fab_source: Energy source for fab, packaging and design (the
                same triple-override the sweep engine applies).
        """
        validate_overrides(overrides)
        resolved = apply_system_overrides(self.system(system), overrides)
        return self._estimator(fab_source, overrides).estimate(resolved)

    # -- sweep ------------------------------------------------------------------------
    def sweep(
        self,
        spec: Optional[Union[SweepSpec, Mapping[str, Any]]] = None,
        *,
        preset: Optional[str] = None,
        spec_file: Optional[Union[str, Path]] = None,
        out: Optional[Union[str, Path]] = None,
        resume: bool = False,
        progress: Optional[Any] = None,
        collect_records: bool = True,
    ) -> SweepResult:
        """Evaluate a scenario grid on this session's backend.

        Args:
            spec: A :class:`SweepSpec` or a spec dictionary (any registered
                axis name is a valid key).  Exactly one of ``spec``,
                ``preset`` and ``spec_file`` must be given.
            preset: Name of a built-in preset (``SweepSpec.preset``).
            spec_file: Path of a ``.json``/``.yaml`` spec file.
            out: Stream records to this JSONL/CSV file as they compute.
            resume: Skip scenarios whose ids are already in ``out`` and
                append only the missing tail (requires ``out``).
            progress: Optional ``(done, total)`` callback per record.
            collect_records: Keep every record in the returned result
                (disable for huge grids streamed to ``out``).

        Returns:
            A :class:`SweepResult` with the spec, summary and records.
        """
        given = [value is not None for value in (spec, preset, spec_file)]
        if sum(given) != 1:
            raise ValueError(
                "exactly one of spec, preset or spec_file must be given"
            )
        if preset is not None:
            spec = SweepSpec.preset(preset)
        elif spec_file is not None:
            spec = SweepSpec.from_file(spec_file)
        elif isinstance(spec, Mapping):
            spec = SweepSpec.from_dict(spec)
        if not isinstance(spec, SweepSpec):
            raise TypeError(
                f"spec must be a SweepSpec or a spec mapping, got "
                f"{type(spec).__name__}"
            )
        if resume and out is None:
            raise ValueError("resume=True needs an out file to resume into")

        cache = self.result_cache
        cache_key: Optional[str] = None
        scenarios: Optional[List[Scenario]] = None
        if cache is not None:
            scenarios = spec.expand()
            cache_key = sweep_cache_key(
                scenarios, self.config, self.include_cost, self.table
            )
            cached = cache.get(cache_key)
            if cached is not None:
                return self._replay_cached(
                    spec,
                    cached,
                    out=out,
                    resume=resume,
                    progress=progress,
                    collect_records=collect_records,
                )

        records: List[Record] = []
        # With a cache attached, records are always collected so a complete
        # run can populate it.
        collect = records.append if (collect_records or cache is not None) else None
        store = open_store(out, append=resume) if out is not None else None
        try:
            summary = self.engine.run(
                scenarios if scenarios is not None else spec,
                store=store,
                progress=progress,
                resume=(out if resume else None),
                on_record=collect,
            )
        finally:
            if store is not None:
                store.close()
        if (
            cache is not None
            and cache_key is not None
            and not resume
            and summary.scenario_count == len(scenarios or ())
            and summary.error_count == 0
        ):
            # Runs containing error records are never cached: a retry of
            # the same submission should re-evaluate the failed scenarios.
            cache.put(cache_key, tuple(records))
        if collect_records and resume:
            # A resumed run only computed the tail; the full record set —
            # old and new, in scenario order on disk — lives in the store.
            records = load_records(out)
        return SweepResult(
            spec=spec,
            summary=summary,
            records=tuple(records) if collect_records else (),
        )

    def _replay_cached(
        self,
        spec: SweepSpec,
        cached: Sequence[Record],
        *,
        out: Optional[Union[str, Path]],
        resume: bool,
        progress: Optional[Any],
        collect_records: bool,
    ) -> SweepResult:
        """Serve a sweep from cached records without evaluating anything.

        The cached records are replayed into ``out`` so callers streaming
        to a file see the exact bytes a live run would have produced; with
        ``resume=True`` only the rows the store does not already hold are
        appended (no duplicates after a crash-resume against a cache hit).
        """
        start = time.perf_counter()
        if out is not None:
            done_ids = set()
            if resume:
                repair_torn_tail(out)
                done_ids = completed_scenario_ids(out)
            with open_store(out, append=resume) as store:
                for record in cached:
                    if record.get("scenario") in done_ids:
                        continue
                    store.append(record)
        total = len(cached)
        if progress is not None:
            progress(total, total)
        best = min(
            (r for r in cached if r.get("total_carbon_g") is not None),
            key=lambda r: r["total_carbon_g"],
            default=None,
        )
        summary = SweepSummary(
            scenario_count=total,
            elapsed_s=time.perf_counter() - start,
            jobs=self.jobs,
            best=dict(best) if best is not None else None,
            store_path=str(Path(out)) if out is not None else None,
            backend=self.backend,
            cached=True,
        )
        return SweepResult(
            spec=spec,
            summary=summary,
            records=tuple(cached) if collect_records else (),
        )

    # -- search -----------------------------------------------------------------------
    def search(
        self,
        spec: Optional[Union[SearchSpec, Mapping[str, Any]]] = None,
        *,
        spec_file: Optional[Union[str, Path]] = None,
        out: Optional[Union[str, Path]] = None,
        resume: bool = False,
        progress: Optional[Any] = None,
    ) -> SearchResult:
        """Goal-driven adaptive search over a sweep grid (:mod:`repro.search`).

        Instead of enumerating a grid like :meth:`sweep`, a registered
        strategy (``random``, ``successive_halving``, ``pareto_refine``)
        spends an evaluation budget on the most promising candidates.  All
        evaluation routes through this session's engine — backend, jobs,
        compile cache and resilience apply unchanged — and a fixed spec
        seed yields bit-identical candidate sequences and results on every
        backend and jobs count.

        Args:
            spec: A :class:`repro.search.SearchSpec` or a spec dictionary
                (its ``space`` key is an ordinary sweep-spec mapping).
                Exactly one of ``spec`` and ``spec_file`` must be given.
            spec_file: Path of a ``.json``/``.yaml`` search-spec file.
            out: Stream every evaluated record (with its ``search_round``
                column) to this JSONL/CSV store.
            resume: Serve candidates already present in ``out`` from their
                stored rows and continue a killed search without
                re-spending budget (requires ``out``).
            progress: Optional ``(evaluations, budget)`` callback per round.

        Returns:
            A :class:`repro.search.SearchResult` — best point, Pareto
            front, per-round trajectory and evaluations spent vs the
            exhaustive grid size.
        """
        given = [value is not None for value in (spec, spec_file)]
        if sum(given) != 1:
            raise ValueError("exactly one of spec or spec_file must be given")
        if spec_file is not None:
            spec = SearchSpec.from_file(spec_file)
        elif isinstance(spec, Mapping):
            spec = SearchSpec.from_dict(spec)
        if not isinstance(spec, SearchSpec):
            raise TypeError(
                f"spec must be a SearchSpec or a spec mapping, got "
                f"{type(spec).__name__}"
            )
        if resume and out is None:
            raise ValueError("resume=True needs an out file to resume from")
        return run_search(
            spec, self.engine, out=out, resume=resume, progress=progress
        )

    # -- explore ----------------------------------------------------------------------
    def explore(
        self,
        system: SystemLike,
        node_choices: Sequence[float],
        *,
        packaging: Optional[Sequence[Any]] = None,
        objectives: Sequence[str] = ("total_carbon_g", "power_w"),
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> ExploreResult:
        """Exhaustive node (× packaging) design-space search + Pareto front.

        Args:
            system: Built system, testcase name or design directory.
            node_choices: Nodes each chiplet may be retargeted to.
            packaging: Optional packaging choices — registered names,
                config dicts (``{"type": ..., ...}``) or spec objects.
            objectives: Record metrics the Pareto front minimises.
            overrides: Registered-axis overrides applied to every candidate
                (system-target axes transform the base system before
                enumeration, config-target axes the estimator config).
        """
        if not objectives:
            raise ValueError("at least one objective is required")
        validate_overrides(overrides)
        resolved = apply_system_overrides(self.system(system), overrides)
        packagings = None
        if packaging is not None:
            packagings = []
            for entry in packaging:
                if isinstance(entry, str):
                    packagings.append(spec_from_dict({"type": entry}))
                elif isinstance(entry, Mapping):
                    packagings.append(spec_from_dict(dict(entry)))
                else:
                    packagings.append(entry)
        explorer = DesignSpaceExplorer(
            estimator=self._estimator(None, overrides), include_cost=self.include_cost
        )
        points = explorer.explore(
            resolved, node_choices, packaging_choices=packagings, jobs=self.jobs
        )
        front = pareto_front(points, list(objectives))
        return ExploreResult(
            points=tuple(points),
            front=tuple(front),
            objectives=tuple(objectives),
        )
