"""Carbon-aware design-space exploration (Section VI of the paper).

The paper's closing argument is that carbon should be a *first-order
optimisation metric* alongside performance, power, area and cost.  This
module provides the search machinery for that: enumerate candidate designs
(node assignments and/or packaging architectures), evaluate each with the
ECO-CHIP estimator (and optionally the dollar-cost model), and extract the
Pareto-optimal set under user-selected objectives.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.disaggregation import all_node_configurations
from repro.core.estimator import EcoChip
from repro.core.results import SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.cost.model import ChipletCostModel, CostReport
from repro.packaging.registry import PackagingSpec

#: Objective extractors available by name.  Every objective is minimised.
OBJECTIVES: Dict[str, Callable[["DesignPoint"], float]] = {
    "total_carbon_g": lambda p: p.carbon.total_cfp_g,
    "embodied_carbon_g": lambda p: p.carbon.embodied_cfp_g,
    "manufacturing_carbon_g": lambda p: p.carbon.manufacturing_cfp_g,
    "operational_carbon_g": lambda p: p.carbon.operational_cfp_g,
    "silicon_area_mm2": lambda p: p.carbon.total_silicon_area_mm2,
    "package_area_mm2": lambda p: p.carbon.packaging.package_area_mm2,
    "power_w": lambda p: p.carbon.operational.energy.total_power_w,
    "cost_usd": lambda p: p.cost.total_cost_usd if p.cost is not None else float("inf"),
}


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One evaluated candidate of the design space.

    Attributes:
        system: The candidate system.
        carbon: ECO-CHIP carbon report.
        cost: Optional dollar-cost report (present when the explorer was
            built with ``include_cost=True``).
    """

    system: ChipletSystem
    carbon: SystemCarbonReport
    cost: Optional[CostReport] = None

    @property
    def label(self) -> str:
        """Readable identifier: node tuple + packaging architecture."""
        nodes = ",".join(f"{int(n)}" for n in self.carbon.node_configuration)
        return f"({nodes})/{self.carbon.packaging.architecture}"

    def objective(self, name: str) -> float:
        """Value of the named objective (smaller is better)."""
        try:
            extractor = OBJECTIVES[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown objective {name!r}; known objectives: {sorted(OBJECTIVES)}"
            ) from exc
        return extractor(self)


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def _skyline_2d(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the 2-objective non-dominated set, O(n log n).

    Sweep the points in lexicographic order: an earlier point ``p`` can only
    dominate a later point ``q`` (``p.x <= q.x`` by sort order), which it
    does iff ``p.y <= q.y`` and the vectors differ.  Tracking the minimum
    ``y`` seen so far — and the smallest ``x`` achieving it, to keep exact
    duplicates mutually non-dominating — decides each point in O(1).
    """
    order = sorted(range(len(vectors)), key=lambda i: vectors[i])
    survivors: List[int] = []
    best_y = float("inf")
    best_y_x = float("inf")  # smallest x among points achieving best_y
    for index in order:
        x, y = vectors[index]
        if y < best_y:
            best_y, best_y_x = y, x
            survivors.append(index)
        elif y == best_y and x == best_y_x:
            survivors.append(index)  # exact duplicate of the current minimum
    return survivors


def _skyline_bnl(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the k-objective non-dominated set (block-nested loop).

    Points are visited in lexicographic order so likely dominators enter the
    window early; each candidate is compared against the current window with
    an early exit on the first dominator.  Worst case O(n^2) comparisons,
    but O(n * |front|) in practice — far below the all-pairs scan for the
    small fronts design-space sweeps produce.
    """
    order = sorted(range(len(vectors)), key=lambda i: vectors[i])
    window: List[int] = []
    for index in order:
        candidate = vectors[index]
        dominated = False
        for kept in window:
            if _dominates(vectors[kept], candidate):
                dominated = True
                break
        if dominated:
            continue
        # Lexicographic order guarantees earlier window entries are never
        # dominated by later candidates, so the window only grows.
        window.append(index)
    return window


def pareto_front(points: Sequence["DesignPoint"], objectives: Sequence[str]) -> List["DesignPoint"]:
    """The non-dominated subset of ``points`` under the named objectives.

    Accepts any objects exposing ``objective(name) -> float`` (both
    :class:`DesignPoint` and :class:`repro.sweep.store.SweepRow`).  Uses a
    sort-based skyline: O(n log n) for two objectives, a block-nested loop
    with early exit otherwise.  The result preserves input order.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    vectors = [tuple(point.objective(name) for name in objectives) for point in points]
    if len(objectives) == 1:
        best = min((v[0] for v in vectors), default=None)
        return [point for point, v in zip(points, vectors) if v[0] == best]
    if len(objectives) == 2:
        survivors = _skyline_2d(vectors)
    else:
        survivors = _skyline_bnl(vectors)
    keep = set(survivors)
    return [point for index, point in enumerate(points) if index in keep]


class DesignSpaceExplorer:
    """Enumerates and evaluates chiplet design spaces.

    Args:
        estimator: ECO-CHIP estimator to use (a default one is built).
        include_cost: Also evaluate the dollar-cost model for every point.
    """

    def __init__(
        self,
        estimator: Optional[EcoChip] = None,
        include_cost: bool = False,
    ):
        self.estimator = estimator if estimator is not None else EcoChip()
        self.cost_model = ChipletCostModel(table=self.estimator.table) if include_cost else None

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, system: ChipletSystem) -> DesignPoint:
        """Evaluate one candidate system."""
        carbon = self.estimator.estimate(system)
        cost = self.cost_model.estimate(system) if self.cost_model is not None else None
        return DesignPoint(system=system, carbon=carbon, cost=cost)

    def evaluate_many(
        self,
        systems: Sequence[ChipletSystem],
        jobs: int = 1,
        chunk_size: Optional[int] = None,
    ) -> List[DesignPoint]:
        """Evaluate many candidate systems, optionally across processes.

        Delegates to the sweep engine
        (:func:`repro.sweep.engine.evaluate_systems`): ``jobs=1`` runs
        serially with memoised manufacturing/design kernels, ``jobs>1``
        shards the candidates over worker processes.  Results are returned
        in input order and are identical for any ``jobs`` value.
        """
        from repro.sweep.engine import evaluate_systems  # deferred: avoids an import cycle

        return evaluate_systems(
            systems,
            config=self.estimator.config,
            table=self.estimator.table,
            include_cost=self.cost_model is not None,
            jobs=jobs,
            chunk_size=chunk_size,
        )

    def explore(
        self,
        system: ChipletSystem,
        node_choices: Sequence[float],
        packaging_choices: Optional[Iterable[PackagingSpec]] = None,
        jobs: int = 1,
    ) -> List[DesignPoint]:
        """Evaluate every node assignment (and optionally packaging choice).

        The search is exhaustive: ``len(node_choices) ** chiplet_count``
        node assignments times the number of packaging choices.  For the
        paper-scale problems (3 chiplets, 3–4 nodes, 5 packages) this is a
        few hundred estimator calls and runs in seconds; larger spaces can
        be fanned out over ``jobs`` worker processes.
        """
        if not node_choices:
            raise ValueError("at least one node choice is required")
        packagings: List[Optional[PackagingSpec]] = (
            list(packaging_choices) if packaging_choices is not None else [None]
        )
        if not packagings:
            raise ValueError("packaging_choices was given but empty")

        candidates = []
        for nodes in all_node_configurations(node_choices, system.chiplet_count):
            candidate = system.with_nodes(*nodes)
            for packaging in packagings:
                candidates.append(
                    candidate.with_packaging(packaging) if packaging is not None else candidate
                )
        if jobs == 1:
            return [self.evaluate(variant) for variant in candidates]
        return self.evaluate_many(candidates, jobs=jobs)

    # -- selection -------------------------------------------------------------------
    def best(
        self,
        points: Sequence[DesignPoint],
        objective: str = "total_carbon_g",
        constraints: Optional[Dict[str, float]] = None,
    ) -> DesignPoint:
        """The single best point under ``objective``, subject to upper-bound
        ``constraints`` on other objectives (e.g. ``{"power_w": 10.0}``).

        Raises:
            ValueError: when no point satisfies the constraints.
        """
        constraints = constraints or {}
        feasible = [
            point
            for point in points
            if all(point.objective(name) <= bound for name, bound in constraints.items())
        ]
        if not feasible:
            raise ValueError("no design point satisfies the given constraints")
        return min(feasible, key=lambda point: point.objective(objective))

    def pareto(
        self, points: Sequence[DesignPoint], objectives: Sequence[str]
    ) -> List[DesignPoint]:
        """Pareto-optimal subset of ``points`` (delegates to :func:`pareto_front`)."""
        return pareto_front(points, objectives)

    def summarise(
        self, points: Sequence[DesignPoint], objectives: Sequence[str]
    ) -> List[Tuple[str, Dict[str, float]]]:
        """(label, {objective: value}) rows, sorted by the first objective."""
        rows = [
            (point.label, {name: point.objective(name) for name in objectives})
            for point in points
        ]
        rows.sort(key=lambda row: row[1][objectives[0]])
        return rows
