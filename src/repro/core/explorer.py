"""Carbon-aware design-space exploration (Section VI of the paper).

The paper's closing argument is that carbon should be a *first-order
optimisation metric* alongside performance, power, area and cost.  This
module provides the search machinery for that: enumerate candidate designs
(node assignments and/or packaging architectures), evaluate each with the
ECO-CHIP estimator (and optionally the dollar-cost model), and extract the
Pareto-optimal set under user-selected objectives.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # optional fast path, same soft dependency as repro.fastpath.batch
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the reference env
    _np = None

from repro.core.disaggregation import all_node_configurations
from repro.core.estimator import EcoChip
from repro.core.results import SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.cost.model import ChipletCostModel, CostReport
from repro.packaging.registry import PackagingSpec

#: Objective extractors available by name.  Every objective is minimised.
OBJECTIVES: Dict[str, Callable[["DesignPoint"], float]] = {
    "total_carbon_g": lambda p: p.carbon.total_cfp_g,
    "embodied_carbon_g": lambda p: p.carbon.embodied_cfp_g,
    "manufacturing_carbon_g": lambda p: p.carbon.manufacturing_cfp_g,
    "operational_carbon_g": lambda p: p.carbon.operational_cfp_g,
    "silicon_area_mm2": lambda p: p.carbon.total_silicon_area_mm2,
    "package_area_mm2": lambda p: p.carbon.packaging.package_area_mm2,
    "power_w": lambda p: p.carbon.operational.energy.total_power_w,
    "cost_usd": lambda p: p.cost.total_cost_usd if p.cost is not None else float("inf"),
}


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One evaluated candidate of the design space.

    Attributes:
        system: The candidate system.
        carbon: ECO-CHIP carbon report.
        cost: Optional dollar-cost report (present when the explorer was
            built with ``include_cost=True``).
    """

    system: ChipletSystem
    carbon: SystemCarbonReport
    cost: Optional[CostReport] = None

    @property
    def label(self) -> str:
        """Readable identifier: node tuple + packaging architecture."""
        nodes = ",".join(f"{int(n)}" for n in self.carbon.node_configuration)
        return f"({nodes})/{self.carbon.packaging.architecture}"

    def objective(self, name: str) -> float:
        """Value of the named objective (smaller is better)."""
        try:
            extractor = OBJECTIVES[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown objective {name!r}; known objectives: {sorted(OBJECTIVES)}"
            ) from exc
        return extractor(self)


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimisation).

    Assumes NaN-free vectors: every NaN comparison is ``False``, which would
    make a NaN-bearing point undominatable and silently pollute the front.
    :func:`pareto_front` screens NaN out (or raises) before any skyline runs,
    so the skylines themselves can assume a total order per coordinate.
    """
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def _skyline_2d(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the 2-objective non-dominated set, O(n log n).

    Sweep the points in lexicographic order: an earlier point ``p`` can only
    dominate a later point ``q`` (``p.x <= q.x`` by sort order), which it
    does iff ``p.y <= q.y`` and the vectors differ.  Tracking the minimum
    ``y`` seen so far — and the smallest ``x`` achieving it, to keep exact
    duplicates mutually non-dominating — decides each point in O(1).
    """
    order = sorted(range(len(vectors)), key=lambda i: vectors[i])
    survivors: List[int] = []
    best_y = float("inf")
    best_y_x = float("inf")  # smallest x among points achieving best_y
    for index in order:
        x, y = vectors[index]
        if y < best_y:
            best_y, best_y_x = y, x
            survivors.append(index)
        elif y == best_y and x == best_y_x:
            survivors.append(index)  # exact duplicate of the current minimum
    return survivors


def _skyline_bnl(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the k-objective non-dominated set (block-nested loop).

    Points are visited in lexicographic order so likely dominators enter the
    window early; each candidate is compared against the current window with
    an early exit on the first dominator.  Worst case O(n^2) comparisons,
    but O(n * |front|) in practice — far below the all-pairs scan for the
    small fronts design-space sweeps produce.
    """
    order = sorted(range(len(vectors)), key=lambda i: vectors[i])
    window: List[int] = []
    for index in order:
        candidate = vectors[index]
        dominated = False
        for kept in window:
            if _dominates(vectors[kept], candidate):
                dominated = True
                break
        if dominated:
            continue
        # Lexicographic order guarantees earlier window entries are never
        # dominated by later candidates, so the window only grows.
        window.append(index)
    return window


#: Below this many (pre-sorted) points the divide-and-conquer skyline stops
#: recursing and scans the slice directly.
_DNC_BASE_CASE = 64

#: Below this many points the vectorised skyline is not worth the array
#: round-trip and the pure-python divide-and-conquer runs instead.
_NUMPY_MIN_POINTS = 256

def _skyline_filter(
    candidates: Sequence[int], reference: Sequence[int], vectors: Sequence[Tuple[float, ...]]
) -> List[int]:
    """The ``candidates`` not dominated by any ``reference`` index."""
    return [
        index
        for index in candidates
        if not any(_dominates(vectors[kept], vectors[index]) for kept in reference)
    ]


def _skyline_divide(
    order: Sequence[int], vectors: Sequence[Tuple[float, ...]]
) -> List[int]:
    """Indices of the k-objective non-dominated set, divide and conquer.

    ``order`` must be lexicographically pre-sorted.  That order means a later
    point can never dominate an earlier one (its first differing coordinate
    is larger; exact duplicates fail the strict-< leg of :func:`_dominates`),
    so merging halves only filters the right skyline against the left one —
    and filtering against the left *skyline* suffices, because any left point
    dominating a right point is itself dominated by (or equal to) some left
    survivor, which then dominates the right point by transitivity.  The
    window scan of :func:`_skyline_bnl` handles slices of ``_DNC_BASE_CASE``.
    """
    if len(order) <= _DNC_BASE_CASE:
        window: List[int] = []
        for index in order:
            candidate = vectors[index]
            if not any(_dominates(vectors[kept], candidate) for kept in window):
                window.append(index)
        return window
    mid = len(order) // 2
    left = _skyline_divide(order[:mid], vectors)
    right = _skyline_divide(order[mid:], vectors)
    return left + _skyline_filter(right, left, vectors)


def _skyline_numpy(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the k-objective non-dominated set, vectorised.

    The same sorted-scan argument as :func:`_skyline_divide`: after a
    lexicographic sort a later point never dominates an earlier one, so a
    single left-to-right pass suffices — each surviving point culls, in one
    whole-array comparison, every later point it dominates.  A culled
    point's own victims need no separate pass: whatever culled it (weakly)
    dominates them too, by transitivity.  The pass count therefore equals
    the front size, not n.  Tie/duplicate semantics are inherited from the
    strict-< leg: ``ge.all & gt.any`` is exactly :func:`_dominates`, so
    exact duplicates stay mutually non-dominating.
    """
    matrix = _np.asarray(vectors, dtype=float)
    if matrix.size == 0:  # an empty list collapses to shape (0,): no lexsort keys
        return []
    # lexsort keys run last-to-first; reversed rows of the transpose sort
    # by objective 0 first, matching sorted(tuple) in the python skylines.
    order = _np.lexsort(matrix.T[::-1])
    ranked = matrix[order]
    cursor = 0
    while cursor < len(ranked):
        pivot = ranked[cursor]
        tail = ranked[cursor + 1 :]
        culled = (tail >= pivot).all(axis=1) & (tail > pivot).any(axis=1)
        if culled.any():
            keep = ~culled
            ranked = _np.concatenate([ranked[: cursor + 1], tail[keep]])
            order = _np.concatenate([order[: cursor + 1], order[cursor + 1 :][keep]])
        cursor += 1
    return [int(index) for index in order]


def _skyline_2d_numpy(matrix) -> List[int]:
    """Indices of the 2-objective non-dominated set, vectorised.

    Sort by (x, y); within an equal-x run the first y is the run minimum, and
    a point survives iff it carries that minimum *and* beats the strictly
    smaller-x prefix's best y (ties across runs lose: the earlier point
    weakly dominates).  Exact duplicates of a surviving point share its y and
    run, so all of them survive — the same tie/duplicate semantics as
    :func:`_skyline_2d` and :func:`_dominates`.
    """
    if matrix.size == 0:
        return []
    order = _np.lexsort((matrix[:, 1], matrix[:, 0]))
    x = matrix[order, 0]
    y = matrix[order, 1]
    starts = _np.empty(len(order), dtype=bool)
    starts[0] = True
    starts[1:] = x[1:] != x[:-1]
    run_ids = _np.cumsum(starts) - 1
    run_min = y[starts]  # first y of each equal-x run is its minimum
    prefix_best = _np.empty(len(run_min))
    prefix_best[0] = _np.inf
    if len(run_min) > 1:
        prefix_best[1:] = _np.minimum.accumulate(run_min)[:-1]
    keep = (y == run_min[run_ids]) & (y < prefix_best[run_ids])
    return [int(index) for index in order[keep]]


def _skyline_kd(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Dispatch the k>=3 skyline: vectorised when numpy is present and the
    input is large enough to amortise the array round-trip, pure-python
    divide and conquer otherwise.  Both compute the exact non-dominated set
    (it is a property of the point multiset, not of the algorithm), so the
    choice never changes results.
    """
    if _np is not None and len(vectors) >= _NUMPY_MIN_POINTS:
        return _skyline_numpy(vectors)
    order = sorted(range(len(vectors)), key=lambda i: vectors[i])
    return _skyline_divide(order, vectors)


def pareto_front(
    points: Sequence["DesignPoint"],
    objectives: Sequence[str],
    on_nan: str = "exclude",
) -> List["DesignPoint"]:
    """The non-dominated subset of ``points`` under the named objectives.

    Accepts any objects exposing ``objective(name) -> float`` (both
    :class:`DesignPoint` and :class:`repro.sweep.store.SweepRow`).  Uses a
    sort-based skyline: O(n log n) for two objectives, divide and conquer
    (vectorised with numpy on large inputs) otherwise.  The result preserves
    input order.

    NaN objective values have no place in a domination order (every NaN
    comparison is false, so a NaN-bearing point both escapes domination and
    poisons single-objective ``min`` in input-order-dependent ways).  They
    are handled up front, identically for every objective count:

    * ``on_nan="exclude"`` (default): points with any NaN objective are
      dropped from consideration with a :class:`RuntimeWarning`.
    * ``on_nan="raise"``: a NaN objective raises :class:`ValueError`.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    if on_nan not in ("exclude", "raise"):
        raise ValueError(f"on_nan must be 'exclude' or 'raise', got {on_nan!r}")
    all_vectors = [tuple(point.objective(name) for name in objectives) for point in points]
    # Large multi-objective inputs go through numpy end to end: the NaN
    # screen and the skyline share one matrix instead of re-walking python
    # tuples (the culling skyline is k-agnostic, so k == 2 qualifies too).
    vectorised = _np is not None and len(objectives) >= 2 and len(all_vectors) >= _NUMPY_MIN_POINTS
    if vectorised:
        matrix = _np.asarray(all_vectors, dtype=float)
        index_map = _np.flatnonzero(~_np.isnan(matrix).any(axis=1))
        dropped = len(all_vectors) - len(index_map)
    else:
        indexes = [
            index
            for index, vector in enumerate(all_vectors)
            if not any(value != value for value in vector)
        ]
        dropped = len(all_vectors) - len(indexes)
    if dropped:
        if on_nan == "raise":
            raise ValueError(
                f"{dropped} of {len(all_vectors)} points have NaN values under "
                f"objectives {list(objectives)}"
            )
        warnings.warn(
            f"pareto_front: excluding {dropped} of {len(all_vectors)} points "
            f"with NaN objective values",
            RuntimeWarning,
            stacklevel=2,
        )
    if vectorised:
        clean = matrix if not dropped else matrix[index_map]
        if len(objectives) == 2:
            survivors = _skyline_2d_numpy(clean)
        else:
            survivors = _skyline_numpy(clean)
        keep = {int(index) for index in index_map[survivors]}
        return [point for index, point in enumerate(points) if index in keep]
    vectors = [all_vectors[index] for index in indexes]
    if not vectors:
        return []
    if len(objectives) == 1:
        best = min(vector[0] for vector in vectors)
        keep = {
            index for index, vector in zip(indexes, vectors) if vector[0] == best
        }
    else:
        if len(objectives) == 2:
            survivors = _skyline_2d(vectors)
        else:
            survivors = _skyline_kd(vectors)
        keep = {indexes[survivor] for survivor in survivors}
    return [point for index, point in enumerate(points) if index in keep]


def front_delta(
    previous: Iterable[Any], current: Iterable[Any]
) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
    """``(entered, left)`` members between two Pareto-front snapshots.

    Snapshots are iterables of hashable front-member identities (scenario
    ids, labels, objective tuples — whatever the caller tracks fronts by).
    ``entered`` lists current members absent from the previous snapshot and
    ``left`` the previous members no longer present, each preserving its
    snapshot's order.  The adaptive search strategies
    (:mod:`repro.search.strategies`) spend evaluation batches only where
    the front moved, and stop when it stalls — both decisions reduce to
    this delta.
    """
    previous = tuple(previous)
    current = tuple(current)
    previous_set = set(previous)
    current_set = set(current)
    entered = tuple(member for member in current if member not in previous_set)
    left = tuple(member for member in previous if member not in current_set)
    return entered, left


def front_moved(previous: Iterable[Any], current: Iterable[Any]) -> bool:
    """True when the front changed between two snapshots (any churn)."""
    entered, left = front_delta(previous, current)
    return bool(entered or left)


class DesignSpaceExplorer:
    """Enumerates and evaluates chiplet design spaces.

    Args:
        estimator: ECO-CHIP estimator to use (a default one is built).
        include_cost: Also evaluate the dollar-cost model for every point.
    """

    def __init__(
        self,
        estimator: Optional[EcoChip] = None,
        include_cost: bool = False,
    ):
        self.estimator = estimator if estimator is not None else EcoChip()
        self.cost_model = ChipletCostModel(table=self.estimator.table) if include_cost else None

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, system: ChipletSystem) -> DesignPoint:
        """Evaluate one candidate system."""
        carbon = self.estimator.estimate(system)
        cost = self.cost_model.estimate(system) if self.cost_model is not None else None
        return DesignPoint(system=system, carbon=carbon, cost=cost)

    def evaluate_many(
        self,
        systems: Sequence[ChipletSystem],
        jobs: int = 1,
        chunk_size: Optional[int] = None,
    ) -> List[DesignPoint]:
        """Evaluate many candidate systems, optionally across processes.

        Delegates to the sweep engine
        (:func:`repro.sweep.engine.evaluate_systems`): ``jobs=1`` runs
        serially with memoised manufacturing/design kernels, ``jobs>1``
        shards the candidates over worker processes.  Results are returned
        in input order and are identical for any ``jobs`` value.
        """
        from repro.sweep.engine import evaluate_systems  # deferred: avoids an import cycle

        return evaluate_systems(
            systems,
            config=self.estimator.config,
            table=self.estimator.table,
            include_cost=self.cost_model is not None,
            jobs=jobs,
            chunk_size=chunk_size,
        )

    def explore(
        self,
        system: ChipletSystem,
        node_choices: Sequence[float],
        packaging_choices: Optional[Iterable[PackagingSpec]] = None,
        jobs: int = 1,
    ) -> List[DesignPoint]:
        """Evaluate every node assignment (and optionally packaging choice).

        The search is exhaustive: ``len(node_choices) ** chiplet_count``
        node assignments times the number of packaging choices.  For the
        paper-scale problems (3 chiplets, 3–4 nodes, 5 packages) this is a
        few hundred estimator calls and runs in seconds; larger spaces can
        be fanned out over ``jobs`` worker processes.
        """
        if not node_choices:
            raise ValueError("at least one node choice is required")
        packagings: List[Optional[PackagingSpec]] = (
            list(packaging_choices) if packaging_choices is not None else [None]
        )
        if not packagings:
            raise ValueError("packaging_choices was given but empty")

        candidates = []
        for nodes in all_node_configurations(node_choices, system.chiplet_count):
            candidate = system.with_nodes(*nodes)
            for packaging in packagings:
                candidates.append(
                    candidate.with_packaging(packaging) if packaging is not None else candidate
                )
        if jobs == 1:
            return [self.evaluate(variant) for variant in candidates]
        return self.evaluate_many(candidates, jobs=jobs)

    # -- selection -------------------------------------------------------------------
    def best(
        self,
        points: Sequence[DesignPoint],
        objective: str = "total_carbon_g",
        constraints: Optional[Dict[str, float]] = None,
    ) -> DesignPoint:
        """The single best point under ``objective``, subject to upper-bound
        ``constraints`` on other objectives (e.g. ``{"power_w": 10.0}``).

        Raises:
            ValueError: when no point satisfies the constraints.
        """
        constraints = constraints or {}
        feasible = [
            point
            for point in points
            if all(point.objective(name) <= bound for name, bound in constraints.items())
        ]
        if not feasible:
            raise ValueError("no design point satisfies the given constraints")
        # Ties on the objective resolve by label, not iteration order, so
        # equal-valued candidates pick the same winner however the caller
        # enumerated them (pareto_refine seeds its neighbourhood from best).
        return min(
            feasible, key=lambda point: (point.objective(objective), point.label)
        )

    def pareto(
        self,
        points: Sequence[DesignPoint],
        objectives: Sequence[str],
        on_nan: str = "exclude",
    ) -> List[DesignPoint]:
        """Pareto-optimal subset of ``points`` (delegates to :func:`pareto_front`).

        ``on_nan`` has :func:`pareto_front` semantics: ``"exclude"`` drops
        NaN-bearing points with a warning, ``"raise"`` errors on them.
        """
        return pareto_front(points, objectives, on_nan=on_nan)

    def summarise(
        self, points: Sequence[DesignPoint], objectives: Sequence[str]
    ) -> List[Tuple[str, Dict[str, float]]]:
        """(label, {objective: value}) rows, sorted by the first objective."""
        rows = [
            (point.label, {name: point.objective(name) for name in objectives})
            for point in points
        ]
        rows.sort(key=lambda row: row[1][objectives[0]])
        return rows
