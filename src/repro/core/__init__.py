"""Core ECO-CHIP API: system description, estimator and design-space tools.

Typical usage::

    from repro.core import Chiplet, ChipletSystem, EcoChip
    from repro.packaging import RDLFanoutSpec
    from repro.operational import OperatingSpec

    system = ChipletSystem(
        name="my-soc",
        chiplets=(
            Chiplet("compute", "logic", node=7, area_mm2=150),
            Chiplet("cache", "memory", node=10, area_mm2=60),
            Chiplet("io", "analog", node=14, area_mm2=40),
        ),
        packaging=RDLFanoutSpec(layers=6, technology_nm=65),
        operating=OperatingSpec(lifetime_years=2, duty_cycle=0.2, average_power_w=30),
    )
    report = EcoChip().estimate(system)
    print(report.summary())
"""

from repro.core.chiplet import Chiplet
from repro.core.disaggregation import (
    carbon_area_product,
    carbon_delay_product,
    carbon_power_product,
    monolithic_counterpart,
    nc_sweep,
    node_configuration_sweep,
    split_block,
)
from repro.core.estimator import EcoChip, EstimatorConfig
from repro.core.explorer import DesignPoint, DesignSpaceExplorer, pareto_front
from repro.core.results import ChipletCarbonReport, SystemCarbonReport
from repro.core.system import ChipletSystem

__all__ = [
    "DesignPoint",
    "DesignSpaceExplorer",
    "pareto_front",
    "Chiplet",
    "ChipletSystem",
    "EcoChip",
    "EstimatorConfig",
    "ChipletCarbonReport",
    "SystemCarbonReport",
    "carbon_area_product",
    "carbon_delay_product",
    "carbon_power_product",
    "monolithic_counterpart",
    "nc_sweep",
    "node_configuration_sweep",
    "split_block",
]
