"""System description: a set of chiplets, a package and operating conditions."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro.core.chiplet import Chiplet
from repro.operational.energy import OperatingSpec
from repro.packaging.monolithic import MonolithicSpec
from repro.packaging.registry import PackagingSpec, is_monolithic_spec

#: Default number of systems manufactured (``NS`` in the paper's experiments).
DEFAULT_SYSTEM_VOLUME = 100_000

#: Default number of design iterations (``Ndes`` in Table I).
DEFAULT_DESIGN_ITERATIONS = 100


@dataclasses.dataclass(frozen=True)
class ChipletSystem:
    """A complete system to be analysed by :class:`repro.core.estimator.EcoChip`.

    Attributes:
        name: System name, used in reports.
        chiplets: The chiplets (one entry for a monolithic SoC).
        packaging: Packaging-architecture spec; a single-chiplet system
            defaults to :class:`MonolithicSpec`.
        operating: Use-phase operating conditions.
        system_volume: ``NS``, the number of systems manufactured; design
            carbon is amortised over it.
        design_iterations: ``Ndes``, SP&R/analysis iterations per chiplet.
    """

    name: str
    chiplets: Tuple[Chiplet, ...]
    packaging: PackagingSpec = dataclasses.field(default_factory=MonolithicSpec)
    operating: OperatingSpec = dataclasses.field(default_factory=OperatingSpec)
    system_volume: float = DEFAULT_SYSTEM_VOLUME
    design_iterations: int = DEFAULT_DESIGN_ITERATIONS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a system needs a non-empty name")
        chiplets = tuple(self.chiplets)
        object.__setattr__(self, "chiplets", chiplets)
        if not chiplets:
            raise ValueError(f"system {self.name!r} needs at least one chiplet")
        names = [c.name for c in chiplets]
        if len(set(names)) != len(names):
            raise ValueError(f"system {self.name!r} has duplicate chiplet names: {names}")
        if self.system_volume <= 0:
            raise ValueError(
                f"system volume must be positive, got {self.system_volume}"
            )
        if self.design_iterations < 1:
            raise ValueError(
                f"design iterations must be >= 1, got {self.design_iterations}"
            )

    # -- introspection ---------------------------------------------------------------
    @property
    def is_monolithic(self) -> bool:
        """True when the system is a single die with no advanced packaging.

        Delegates to the packaging registry, so any architecture whose model
        declares ``is_monolithic = True`` — built-in or plugin — counts.
        """
        return len(self.chiplets) == 1 or is_monolithic_spec(self.packaging)

    @property
    def chiplet_count(self) -> int:
        """Number of chiplets."""
        return len(self.chiplets)

    def chiplet(self, name: str) -> Chiplet:
        """Return the chiplet called ``name``."""
        for chiplet in self.chiplets:
            if chiplet.name == name:
                return chiplet
        raise KeyError(f"system {self.name!r} has no chiplet named {name!r}")

    # -- builders --------------------------------------------------------------------
    def with_packaging(self, packaging: PackagingSpec) -> "ChipletSystem":
        """A copy with a different packaging architecture."""
        return dataclasses.replace(self, packaging=packaging)

    def with_operating(self, operating: OperatingSpec) -> "ChipletSystem":
        """A copy with different operating conditions."""
        return dataclasses.replace(self, operating=operating)

    def with_chiplets(
        self, chiplets: Sequence[Chiplet], name: Optional[str] = None
    ) -> "ChipletSystem":
        """A copy with a different chiplet set (and optionally a new name)."""
        return dataclasses.replace(
            self,
            chiplets=tuple(chiplets),
            name=name if name is not None else self.name,
        )

    def with_nodes(self, *nodes: float) -> "ChipletSystem":
        """A copy with each chiplet retargeted to the corresponding node.

        ``len(nodes)`` must equal the chiplet count.  This is the
        "technology mix-and-match" knob: ``system.with_nodes(7, 14, 10)``
        re-implements the first chiplet in 7 nm, the second in 14 nm and the
        third in 10 nm.
        """
        if len(nodes) != len(self.chiplets):
            raise ValueError(
                f"expected {len(self.chiplets)} nodes, got {len(nodes)}"
            )
        retargeted = tuple(
            chiplet.retargeted(node) for chiplet, node in zip(self.chiplets, nodes)
        )
        return dataclasses.replace(self, chiplets=retargeted)

    def with_volume(self, system_volume: float) -> "ChipletSystem":
        """A copy with a different manufacturing volume ``NS``."""
        return dataclasses.replace(self, system_volume=system_volume)

    def node_configuration(self) -> Tuple[float, ...]:
        """The tuple of chiplet nodes, e.g. ``(7.0, 14.0, 10.0)``."""
        return tuple(float(c.node) for c in self.chiplets)
