"""Chiplet description: the architectural input of ECO-CHIP.

A chiplet is described by its design type (logic / memory / analog), the
technology node it is implemented in, and its size.  Size can be given
either as a transistor count (the paper's canonical input) or as a die area
measured at some reference node (die-shot breakdowns are published as
areas); the area-scaling model converts between the two.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.technology.nodes import NodeKey, _normalise_node_key
from repro.technology.scaling import AreaScalingModel, DesignType


@dataclasses.dataclass(frozen=True)
class Chiplet:
    """One chiplet (or one functional block of a monolithic SoC).

    Attributes:
        name: Unique name within its system.
        design_type: Block flavour; anything :meth:`DesignType.parse`
            understands ("logic", "memory", "analog", "digital", "sram", …).
        node: Technology node the chiplet is implemented in (nm).
        transistors: Device count.  Either this or ``area_mm2`` must be set.
        area_mm2: Die area measured at ``area_reference_node``.
        area_reference_node: Node at which ``area_mm2`` was measured;
            defaults to ``node``.
        reused: True when the chiplet is a pre-designed, silicon-proven IP —
            it then contributes no design carbon.
        manufactured_volume: ``NM_i``, the number of chiplets of this type
            manufactured across all systems that use it.  ``None`` defaults
            to the system volume ``NS``.
    """

    name: str
    design_type: "DesignType | str"
    node: NodeKey
    transistors: Optional[float] = None
    area_mm2: Optional[float] = None
    area_reference_node: Optional[NodeKey] = None
    reused: bool = False
    manufactured_volume: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a chiplet needs a non-empty name")
        object.__setattr__(self, "design_type", DesignType.parse(self.design_type))
        object.__setattr__(self, "node", _normalise_node_key(self.node))
        if self.area_reference_node is not None:
            object.__setattr__(
                self, "area_reference_node", _normalise_node_key(self.area_reference_node)
            )
        if self.transistors is None and self.area_mm2 is None:
            raise ValueError(
                f"chiplet {self.name!r}: either transistors or area_mm2 must be given"
            )
        if self.transistors is not None and self.transistors <= 0:
            raise ValueError(
                f"chiplet {self.name!r}: transistor count must be positive, "
                f"got {self.transistors}"
            )
        if self.area_mm2 is not None and self.area_mm2 <= 0:
            raise ValueError(
                f"chiplet {self.name!r}: area must be positive, got {self.area_mm2}"
            )
        if self.manufactured_volume is not None and self.manufactured_volume <= 0:
            raise ValueError(
                f"chiplet {self.name!r}: manufactured volume must be positive, "
                f"got {self.manufactured_volume}"
            )

    # -- size resolution -----------------------------------------------------------
    def transistor_count(self, scaling: AreaScalingModel) -> float:
        """Device count, derived from the reference-node area if necessary."""
        if self.transistors is not None:
            return self.transistors
        reference = (
            self.area_reference_node if self.area_reference_node is not None else self.node
        )
        return scaling.transistors_from_area(
            self.area_mm2, self.design_type, reference  # type: ignore[arg-type]
        )

    def area_at_node(self, scaling: AreaScalingModel, node: Optional[NodeKey] = None) -> float:
        """Die area at ``node`` (default: the chiplet's own node)."""
        target = node if node is not None else self.node
        return scaling.area_mm2(self.transistor_count(scaling), self.design_type, target)

    # -- convenience ----------------------------------------------------------------
    def retargeted(self, node: NodeKey) -> "Chiplet":
        """A copy of this chiplet implemented in a different node.

        The functionality (transistor count or reference-node area) is
        preserved; only the implementation node changes.  When the size was
        given as an area without an explicit reference node, the current
        node is pinned as the reference so the area keeps its meaning.
        """
        reference = self.area_reference_node
        if self.transistors is None and reference is None:
            reference = self.node
        return dataclasses.replace(
            self, node=_normalise_node_key(node), area_reference_node=reference
        )

    def renamed(self, name: str) -> "Chiplet":
        """A copy with a different name."""
        return dataclasses.replace(self, name=name)
