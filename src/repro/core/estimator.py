"""The ECO-CHIP estimator: ties every model together (Eqs. 1–3).

The estimation pipeline for a :class:`~repro.core.system.ChipletSystem`:

1. Resolve each chiplet's transistor count and its die area at its node
   (area-scaling model, Section III-C(1)).
2. Ask the packaging model how much silicon it adds *inside* each chiplet
   (NoC routers for passive interposers, PHYs for RDL/EMIB) and fold that
   into the chiplet areas so the overhead degrades chiplet yield.
3. Floorplan the final chiplet areas (slicing floorplanner) to obtain the
   package-substrate / interposer area including whitespace.
4. Evaluate the packaging model → ``C_HI`` (package + packaged comm CFP)
   and the operational communication power overhead.
5. Evaluate the manufacturing model per chiplet → ``Cmfg`` (Eq. 5).
6. Evaluate the design model → amortised ``Cdes`` (Eq. 12).
7. Evaluate the operational model → ``Cop`` (Eqs. 3, 14).
8. Assemble ``Cemb = Cmfg + Cdes + C_HI`` and
   ``Ctot = Cemb + lifetime * Cop`` (Eqs. 1–2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.core.chiplet import Chiplet
from repro.core.results import ChipletCarbonReport, SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.design.design_cfp import DesignCarbonModel, SystemDesignResult
from repro.floorplan.slicing import (
    DEFAULT_CHIPLET_SPACING_MM,
    FloorplanResult,
    SlicingFloorplanner,
)
from repro.manufacturing.chip import ChipManufacturingModel
from repro.manufacturing.wafer import DEFAULT_WAFER_DIAMETER_MM
from repro.noc.orion import RouterSpec
from repro.operational.energy import EnergyModel, OperatingSpec
from repro.operational.operational_cfp import OperationalCarbonModel
from repro.packaging.base import PackagedChiplet
from repro.packaging.registry import build_packaging_model
from repro.technology.carbon_sources import CarbonSource
from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, TechnologyTable
from repro.technology.scaling import AreaScalingModel

SourceLike = Union[CarbonSource, str, float, int]


@dataclasses.dataclass(frozen=True)
class EstimatorConfig:
    """Global configuration of the estimator (Section III-A inputs 3 and 4).

    Attributes:
        fab_carbon_source: Energy source of the chip-manufacturing fab.
        package_carbon_source: Energy source of the packaging/assembly fab.
        design_carbon_source: Energy source of the design-compute farm.
        design_power_w: Power of one EDA CPU thread (``Pdes``).
        wafer_diameter_mm: Wafer diameter for the waste model.
        include_wafer_waste: Charge wasted wafer-periphery silicon
            (disable to reproduce the "without wastage" bars of Fig. 3b).
        include_design: Include the design CFP term in ``Cemb``
            (disable to mimic ACT-style accounting).
        chiplet_spacing_mm: Floorplanner spacing constraint.
        router_spec: NoC router microarchitecture for interposer packages.
        defect_density_scale: Multiplier on every node's Table-I defect
            density in the Eq. 4 die-yield model (the
            ``defect_density_scale`` sweep axis); 1.0 reproduces the
            table values bit-exactly.
    """

    fab_carbon_source: SourceLike = CarbonSource.COAL
    package_carbon_source: SourceLike = CarbonSource.COAL
    design_carbon_source: SourceLike = CarbonSource.COAL
    design_power_w: float = 10.0
    wafer_diameter_mm: float = DEFAULT_WAFER_DIAMETER_MM
    include_wafer_waste: bool = True
    include_design: bool = True
    chiplet_spacing_mm: float = DEFAULT_CHIPLET_SPACING_MM
    router_spec: RouterSpec = dataclasses.field(default_factory=RouterSpec)
    defect_density_scale: float = 1.0


@dataclasses.dataclass(frozen=True)
class SystemGeometry:
    """Scenario-independent geometry of a system under one packaging model.

    Produced by :meth:`EcoChip.compute_geometry` and consumed by the
    manufacturing / packaging / operational stages of the pipeline — and by
    :mod:`repro.fastpath`, which compiles it once per scenario template and
    reuses it for every scenario that shares the same node assignment and
    packaging architecture.

    Attributes:
        base_areas: Chiplet name -> die area of the chiplet's own logic.
        overhead_areas: Chiplet name -> silicon added by the packaging
            architecture inside the chiplet (routers, PHYs).
        final_areas: Chiplet name -> ``base + overhead`` (manufactured area).
        packaged_chiplets: Final-area chiplet descriptions, in system order,
            ready for :meth:`repro.packaging.base.PackagingModel.evaluate`.
        floorplan: Slicing floorplan of the final chiplet areas.
    """

    base_areas: Dict[str, float]
    overhead_areas: Dict[str, float]
    final_areas: Dict[str, float]
    packaged_chiplets: Tuple[PackagedChiplet, ...]
    floorplan: FloorplanResult


class EcoChip:
    """Architecture-level total-CFP estimator for monolithic and HI systems.

    Args:
        config: Estimator configuration; defaults match the paper's setup
            (coal-powered fabs, 450 mm wafers, wafer waste and design CFP
            included).
        table: Technology table; the built-in default spans 3–65 nm.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        table: Optional[TechnologyTable] = None,
    ):
        self.config = config if config is not None else EstimatorConfig()
        self.table = table if table is not None else DEFAULT_TECHNOLOGY_TABLE
        self.scaling = AreaScalingModel(table=self.table)
        self.manufacturing = ChipManufacturingModel(
            table=self.table,
            fab_carbon_source=self.config.fab_carbon_source,
            wafer_diameter_mm=self.config.wafer_diameter_mm,
            include_wafer_waste=self.config.include_wafer_waste,
            defect_density_scale=self.config.defect_density_scale,
        )
        self.design_model = DesignCarbonModel(
            table=self.table,
            design_power_w=self.config.design_power_w,
            design_carbon_source=self.config.design_carbon_source,
        )
        self.operational_model = OperationalCarbonModel(table=self.table)
        self.energy_model = EnergyModel(table=self.table)
        self.floorplanner = SlicingFloorplanner(spacing_mm=self.config.chiplet_spacing_mm)

    # -- pure kernels --------------------------------------------------------------
    # Each stage of the pipeline is a standalone kernel over explicit inputs,
    # so callers (the fast path in particular) can run any subset of stages
    # and reuse intermediate results across scenarios.
    def build_packaging_model(self, system: ChipletSystem):
        """The packaging model of ``system`` under this estimator's config."""
        return build_packaging_model(
            system.packaging,
            table=self.table,
            package_carbon_source=self.config.package_carbon_source,
            router_spec=self.config.router_spec,
        )

    def compute_geometry(self, system: ChipletSystem, packaging_model) -> SystemGeometry:
        """Steps 1–3: areas, per-chiplet packaging overheads and floorplan.

        Each :class:`PackagedChiplet` is constructed once at the chiplet's
        base area, used to query the architecture's area overhead (which
        depends only on node and design type), and then re-issued with the
        final area — the overhead-free case reuses the object as is.
        """
        base_areas: Dict[str, float] = {}
        overhead_areas: Dict[str, float] = {}
        final_areas: Dict[str, float] = {}
        packaged_chiplets: List[PackagedChiplet] = []
        for chiplet in system.chiplets:
            base_area = chiplet.area_at_node(self.scaling)
            packaged = PackagedChiplet(
                name=chiplet.name,
                area_mm2=base_area,
                node=float(chiplet.node),
                design_type=chiplet.design_type,  # type: ignore[arg-type]
            )
            overhead = packaging_model.chiplet_area_overhead_mm2(
                packaged, system.chiplet_count
            )
            final_area = base_area + overhead
            base_areas[chiplet.name] = base_area
            overhead_areas[chiplet.name] = overhead
            final_areas[chiplet.name] = final_area
            if overhead:
                packaged = dataclasses.replace(packaged, area_mm2=final_area)
            packaged_chiplets.append(packaged)
        floorplan = self.floorplanner.floorplan(final_areas)
        return SystemGeometry(
            base_areas=base_areas,
            overhead_areas=overhead_areas,
            final_areas=final_areas,
            packaged_chiplets=tuple(packaged_chiplets),
            floorplan=floorplan,
        )

    def manufacturing_reports(
        self, system: ChipletSystem, geometry: SystemGeometry
    ) -> Tuple[List[ChipletCarbonReport], float]:
        """Step 5: per-chiplet manufacturing CFP (design slot left empty)."""
        chiplet_reports: List[ChipletCarbonReport] = []
        manufacturing_total = 0.0
        for chiplet in system.chiplets:
            mfg = self.manufacturing.cfp_for_area(
                geometry.final_areas[chiplet.name],
                chiplet.node,
                chiplet.design_type,
                name=chiplet.name,
            )
            manufacturing_total += mfg.total_g
            chiplet_reports.append(
                ChipletCarbonReport(
                    name=chiplet.name,
                    node_nm=float(chiplet.node),
                    design_type=chiplet.design_type,  # type: ignore[arg-type]
                    base_area_mm2=geometry.base_areas[chiplet.name],
                    overhead_area_mm2=geometry.overhead_areas[chiplet.name],
                    total_area_mm2=geometry.final_areas[chiplet.name],
                    manufacturing=mfg,
                    design=None,  # type: ignore[arg-type]  # filled by the caller
                )
            )
        return chiplet_reports, manufacturing_total

    def design_report(self, system: ChipletSystem) -> SystemDesignResult:
        """Step 6: amortised design CFP of the whole system (Eq. 12)."""
        design_entries = [
            {
                "name": chiplet.name,
                "transistors": chiplet.transistor_count(self.scaling),
                "node": chiplet.node,
                "manufactured_volume": (
                    chiplet.manufactured_volume
                    if chiplet.manufactured_volume is not None
                    else system.system_volume
                ),
                "reused": chiplet.reused,
            }
            for chiplet in system.chiplets
        ]
        return self.design_model.system_design_cfp(
            design_entries,
            iterations=system.design_iterations,
            system_volume=system.system_volume,
            has_inter_die_comm=not system.is_monolithic,
        )

    # -- public API ---------------------------------------------------------------
    def estimate(self, system: ChipletSystem) -> SystemCarbonReport:
        """Full carbon report for ``system``."""
        packaging_model = self.build_packaging_model(system)

        # 1–3. areas, overheads, floorplan ------------------------------------------
        geometry = self.compute_geometry(system, packaging_model)

        # 4. packaging / HI overheads ---------------------------------------------------
        packaging_result = packaging_model.evaluate(
            geometry.packaged_chiplets, geometry.floorplan
        )

        # 5. manufacturing -----------------------------------------------------------------
        chiplet_reports, manufacturing_total = self.manufacturing_reports(system, geometry)

        # 6. design ------------------------------------------------------------------------
        design_result = self.design_report(system)
        design_by_name = {r.name: r for r in design_result.chiplets}
        chiplet_reports = [
            dataclasses.replace(report, design=design_by_name[report.name])
            for report in chiplet_reports
        ]
        design_total = design_result.total_amortised_cfp_g if self.config.include_design else 0.0

        # 7. operational --------------------------------------------------------------------
        operating = self._effective_operating_spec(
            system, geometry.final_areas, packaging_result.comm_power_w
        )
        operational = self.operational_model.evaluate(operating)

        # 8. totals ----------------------------------------------------------------------------
        hi_total = packaging_result.total_cfp_g
        embodied = manufacturing_total + design_total + hi_total
        total = embodied + operational.lifetime_cfp_g

        return SystemCarbonReport(
            system_name=system.name,
            node_configuration=system.node_configuration(),
            chiplets=tuple(chiplet_reports),
            packaging=packaging_result,
            design=design_result,
            operational=operational,
            manufacturing_cfp_g=manufacturing_total,
            design_cfp_g=design_total,
            hi_cfp_g=hi_total,
            embodied_cfp_g=embodied,
            operational_cfp_g=operational.lifetime_cfp_g,
            total_cfp_g=total,
        )

    # -- helpers -----------------------------------------------------------------------
    def _effective_operating_spec(
        self,
        system: ChipletSystem,
        final_areas: Dict[str, float],
        comm_power_w: float,
    ) -> OperatingSpec:
        """Fill derived fields of the operating spec.

        When the spec has no measured power/energy and no explicit
        leakage/capacitance, they are derived by summing the per-chiplet
        contributions at each chiplet's node; the supply voltage defaults to
        the area-weighted average of the chiplet nodes' nominal Vdd (which
        is how older-node chiplets raise the operational footprint).
        """
        spec = system.operating.with_comm_power(comm_power_w)
        if spec.annual_energy_kwh is not None or spec.average_power_w is not None:
            return spec

        total_area = sum(final_areas.values())
        updates: Dict[str, object] = {}
        if spec.leakage_current_a is None:
            updates["leakage_current_a"] = sum(
                self.energy_model.leakage_current_a(final_areas[c.name], c.node)
                for c in system.chiplets
            )
        if spec.load_capacitance_f is None:
            updates["load_capacitance_f"] = sum(
                self.energy_model.load_capacitance_f(final_areas[c.name], c.node)
                for c in system.chiplets
            )
        if spec.vdd_v is None and total_area > 0:
            updates["vdd_v"] = sum(
                self.table.get(c.node).vdd_v * final_areas[c.name]
                for c in system.chiplets
            ) / total_area
        if updates:
            spec = dataclasses.replace(spec, **updates)
        return spec
