"""Result dataclasses produced by the ECO-CHIP estimator."""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.design.design_cfp import ChipletDesignResult, SystemDesignResult
from repro.manufacturing.chip import ManufacturingResult
from repro.operational.operational_cfp import OperationalResult
from repro.packaging.base import PackagingResult
from repro.technology.scaling import DesignType


@dataclasses.dataclass(frozen=True)
class ChipletCarbonReport:
    """Per-chiplet carbon accounting.

    Attributes:
        name: Chiplet name.
        node_nm: Implementation node.
        design_type: Block flavour.
        base_area_mm2: Area of the chiplet's own logic at its node.
        overhead_area_mm2: Extra silicon added by the packaging architecture
            (routers, PHYs) inside this chiplet.
        total_area_mm2: ``base + overhead`` — the area that was manufactured.
        manufacturing: Manufacturing CFP result (Eq. 5) for the total area.
        design: Design CFP result (Eqs. 12–13) for this chiplet.
    """

    name: str
    node_nm: float
    design_type: DesignType
    base_area_mm2: float
    overhead_area_mm2: float
    total_area_mm2: float
    manufacturing: ManufacturingResult
    design: ChipletDesignResult

    @property
    def manufacturing_cfp_g(self) -> float:
        """Manufacturing footprint of this chiplet in grams."""
        return self.manufacturing.total_g

    @property
    def amortised_design_cfp_g(self) -> float:
        """Design footprint charged to one system, in grams."""
        return self.design.amortised_cfp_g


@dataclasses.dataclass(frozen=True)
class SystemCarbonReport:
    """Complete carbon accounting of one system (the estimator's output).

    All carbon values are grams of CO2-equivalent per manufactured system
    unless the name says otherwise.

    Attributes:
        system_name: Name of the analysed system.
        node_configuration: Tuple of chiplet nodes, e.g. ``(7, 14, 10)``.
        chiplets: Per-chiplet reports.
        packaging: Packaging / HI overhead result (``C_HI`` breakdown).
        design: System-level design CFP result.
        operational: Operational CFP result.
        manufacturing_cfp_g: ``Cmfg`` — sum of per-chiplet manufacturing.
        design_cfp_g: ``Cdes`` — amortised design footprint.
        hi_cfp_g: ``C_HI`` — package + packaged communication footprint.
        embodied_cfp_g: ``Cemb = Cmfg + Cdes + C_HI``.
        operational_cfp_g: ``lifetime x Cop``.
        total_cfp_g: ``Ctot = Cemb + lifetime x Cop``.
    """

    system_name: str
    node_configuration: Tuple[float, ...]
    chiplets: Tuple[ChipletCarbonReport, ...]
    packaging: PackagingResult
    design: SystemDesignResult
    operational: OperationalResult
    manufacturing_cfp_g: float
    design_cfp_g: float
    hi_cfp_g: float
    embodied_cfp_g: float
    operational_cfp_g: float
    total_cfp_g: float

    # -- convenience accessors ----------------------------------------------------
    @property
    def embodied_cfp_kg(self) -> float:
        """``Cemb`` in kilograms."""
        return self.embodied_cfp_g / 1000.0

    @property
    def operational_cfp_kg(self) -> float:
        """Lifetime operational footprint in kilograms."""
        return self.operational_cfp_g / 1000.0

    @property
    def total_cfp_kg(self) -> float:
        """``Ctot`` in kilograms."""
        return self.total_cfp_g / 1000.0

    @property
    def total_silicon_area_mm2(self) -> float:
        """Total manufactured silicon area across chiplets."""
        return sum(c.total_area_mm2 for c in self.chiplets)

    @property
    def embodied_fraction(self) -> float:
        """Share of the total footprint that is embodied."""
        if self.total_cfp_g == 0:
            return 0.0
        return self.embodied_cfp_g / self.total_cfp_g

    def chiplet(self, name: str) -> ChipletCarbonReport:
        """Per-chiplet report for ``name``."""
        for report in self.chiplets:
            if report.name == name:
                return report
        raise KeyError(f"no chiplet named {name!r} in report")

    # -- serialisation ---------------------------------------------------------------
    def breakdown(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers (grams)."""
        return {
            "manufacturing_cfp_g": self.manufacturing_cfp_g,
            "design_cfp_g": self.design_cfp_g,
            "hi_cfp_g": self.hi_cfp_g,
            "embodied_cfp_g": self.embodied_cfp_g,
            "operational_cfp_g": self.operational_cfp_g,
            "total_cfp_g": self.total_cfp_g,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dictionary with per-chiplet detail."""
        return {
            "system": self.system_name,
            "node_configuration": list(self.node_configuration),
            "breakdown_g": self.breakdown(),
            "packaging": {
                "architecture": self.packaging.architecture,
                "package_cfp_g": self.packaging.package_cfp_g,
                "comm_cfp_g": self.packaging.comm_cfp_g,
                "package_area_mm2": self.packaging.package_area_mm2,
                "whitespace_area_mm2": self.packaging.whitespace_area_mm2,
                "package_yield": self.packaging.package_yield,
            },
            "chiplets": [
                {
                    "name": c.name,
                    "node_nm": c.node_nm,
                    "design_type": c.design_type.value,
                    "base_area_mm2": c.base_area_mm2,
                    "overhead_area_mm2": c.overhead_area_mm2,
                    "total_area_mm2": c.total_area_mm2,
                    "yield": c.manufacturing.yield_value,
                    "manufacturing_cfp_g": c.manufacturing_cfp_g,
                    "design_cfp_g": c.amortised_design_cfp_g,
                }
                for c in self.chiplets
            ],
            "operational": {
                "annual_energy_kwh": self.operational.energy.annual_energy_kwh,
                "annual_cfp_g": self.operational.annual_cfp_g,
                "lifetime_years": self.operational.lifetime_years,
                "lifetime_cfp_g": self.operational.lifetime_cfp_g,
            },
        }

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"System: {self.system_name}",
            f"  nodes: {tuple(int(n) if float(n).is_integer() else n for n in self.node_configuration)}",
            f"  packaging: {self.packaging.architecture}",
            f"  Cmfg  = {self.manufacturing_cfp_g / 1000.0:10.2f} kg CO2e",
            f"  Cdes  = {self.design_cfp_g / 1000.0:10.2f} kg CO2e (amortised)",
            f"  C_HI  = {self.hi_cfp_g / 1000.0:10.2f} kg CO2e",
            f"  Cemb  = {self.embodied_cfp_g / 1000.0:10.2f} kg CO2e",
            f"  Cop   = {self.operational_cfp_g / 1000.0:10.2f} kg CO2e "
            f"({self.operational.lifetime_years:g} years)",
            f"  Ctot  = {self.total_cfp_g / 1000.0:10.2f} kg CO2e",
            "  chiplets:",
        ]
        for c in self.chiplets:
            lines.append(
                f"    {c.name:<16} {int(c.node_nm):>3}nm "
                f"{c.total_area_mm2:8.1f} mm2  "
                f"yield={c.manufacturing.yield_value:5.2f}  "
                f"Cmfg={c.manufacturing_cfp_g / 1000.0:8.2f} kg"
            )
        return "\n".join(lines)
