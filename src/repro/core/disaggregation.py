"""Design-space exploration helpers: disaggregation and product curves.

These utilities implement the experiments of Sections V and VI:

* :func:`node_configuration_sweep` — sweep technology-node assignments of a
  chiplet system ("technology mix-and-match", Fig. 7).
* :func:`split_block` / :func:`nc_sweep` — split a large block into ``Nc``
  equal chiplets and sweep ``Nc`` (Figs. 9, 10, 15b).
* :func:`monolithic_counterpart` — collapse a chiplet system back into a
  single monolithic die for the HI-vs-monolithic comparisons.
* :func:`carbon_delay_product`, :func:`carbon_power_product`,
  :func:`carbon_area_product` — the Pareto metrics of Figs. 13 and 14.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.chiplet import Chiplet
from repro.core.estimator import EcoChip
from repro.core.results import SystemCarbonReport
from repro.core.system import ChipletSystem
from repro.packaging.monolithic import MonolithicSpec
from repro.packaging.registry import PackagingSpec
from repro.technology.scaling import DesignType

NodeConfig = Tuple[float, ...]


# ---------------------------------------------------------------------------
# Technology mix-and-match
# ---------------------------------------------------------------------------
def node_configuration_sweep(
    system: ChipletSystem,
    configurations: Iterable[Sequence[float]],
    estimator: Optional[EcoChip] = None,
) -> "Dict[NodeConfig, SystemCarbonReport]":
    """Estimate ``system`` for every node configuration in ``configurations``.

    Each configuration assigns one node per chiplet (in chiplet order), like
    the paper's three-tuples ``(digital, memory, analog)``.
    """
    estimator = estimator if estimator is not None else EcoChip()
    results: Dict[NodeConfig, SystemCarbonReport] = {}
    for config in configurations:
        nodes = tuple(float(n) for n in config)
        results[nodes] = estimator.estimate(system.with_nodes(*nodes))
    return results


def iter_node_configurations(
    node_choices: Sequence[float], chiplet_count: int
) -> Iterator[NodeConfig]:
    """Lazily yield every assignment of ``node_choices`` to the chiplets.

    The streaming counterpart of :func:`all_node_configurations` — large
    sweeps can consume configurations one at a time without materialising
    the ``len(node_choices) ** chiplet_count`` grid.
    """
    if chiplet_count < 1:
        raise ValueError(f"chiplet count must be >= 1, got {chiplet_count}")
    for combo in itertools.product(node_choices, repeat=chiplet_count):
        yield tuple(float(n) for n in combo)


def all_node_configurations(
    node_choices: Sequence[float], chiplet_count: int
) -> List[NodeConfig]:
    """Every assignment of ``node_choices`` to ``chiplet_count`` chiplets."""
    return list(iter_node_configurations(node_choices, chiplet_count))


# ---------------------------------------------------------------------------
# Monolithic <-> chiplets
# ---------------------------------------------------------------------------
def monolithic_counterpart(
    system: ChipletSystem,
    node: Optional[float] = None,
    name_suffix: str = "-monolithic",
) -> ChipletSystem:
    """Collapse ``system`` into a single monolithic die.

    The monolithic die keeps every block's transistor count; blocks keep
    their own design type for density purposes but are merged into a single
    die at ``node`` (default: the most advanced node in the system).  The
    result has no advanced packaging.
    """
    target = node if node is not None else min(float(c.node) for c in system.chiplets)
    merged = tuple(
        chiplet.retargeted(target) for chiplet in system.chiplets
    )
    # A monolithic SoC is modelled as its blocks fused into one die: the
    # yield must be evaluated over the total area, which the estimator does
    # when a single Chiplet carries the whole area.  Blocks of different
    # design types have different densities, so the fused transistor count
    # is converted to a logic-equivalent area by keeping per-block areas.
    from repro.technology.scaling import AreaScalingModel  # local to avoid cycle at import time

    scaling = AreaScalingModel()
    total_area = sum(c.area_at_node(scaling, target) for c in merged)
    fused = Chiplet(
        name=f"{system.name}{name_suffix}-die",
        design_type=DesignType.LOGIC,
        node=target,
        area_mm2=total_area,
        area_reference_node=target,
    )
    return ChipletSystem(
        name=f"{system.name}{name_suffix}",
        chiplets=(fused,),
        packaging=MonolithicSpec(),
        operating=system.operating,
        system_volume=system.system_volume,
        design_iterations=system.design_iterations,
    )


def split_block(
    block: Chiplet,
    parts: int,
    name_template: str = "{name}-{index}",
) -> Tuple[Chiplet, ...]:
    """Split ``block`` into ``parts`` equal chiplets (same node and type)."""
    if parts < 1:
        raise ValueError(f"part count must be >= 1, got {parts}")
    if parts == 1:
        return (block,)
    chiplets = []
    for index in range(parts):
        name = name_template.format(name=block.name, index=index)
        if block.transistors is not None:
            piece = Chiplet(
                name=name,
                design_type=block.design_type,
                node=block.node,
                transistors=block.transistors / parts,
                reused=block.reused,
                manufactured_volume=block.manufactured_volume,
            )
        else:
            piece = Chiplet(
                name=name,
                design_type=block.design_type,
                node=block.node,
                area_mm2=block.area_mm2 / parts,  # type: ignore[operator]
                area_reference_node=block.area_reference_node,
                reused=block.reused,
                manufactured_volume=block.manufactured_volume,
            )
        chiplets.append(piece)
    return tuple(chiplets)


def nc_sweep(
    system: ChipletSystem,
    block_name: str,
    counts: Iterable[int],
    packaging: Optional[PackagingSpec] = None,
    estimator: Optional[EcoChip] = None,
) -> "Dict[int, SystemCarbonReport]":
    """Split ``block_name`` of ``system`` into ``Nc`` chiplets and estimate.

    Reproduces the Fig. 10 / Fig. 15(b) experiments where the GA102's large
    digital block is split into a growing number of chiplets while the other
    chiplets stay fixed.
    """
    estimator = estimator if estimator is not None else EcoChip()
    target_block = system.chiplet(block_name)
    others = [c for c in system.chiplets if c.name != block_name]
    results: Dict[int, SystemCarbonReport] = {}
    for count in counts:
        pieces = split_block(target_block, count)
        variant = system.with_chiplets(
            tuple(pieces) + tuple(others),
            name=f"{system.name}-Nc{count + len(others)}",
        )
        if packaging is not None:
            variant = variant.with_packaging(packaging)
        results[count] = estimator.estimate(variant)
    return results


# ---------------------------------------------------------------------------
# Product curves (Figs. 13, 14)
# ---------------------------------------------------------------------------
def carbon_delay_product(report: SystemCarbonReport, delay_s: float) -> float:
    """Carbon-delay product in kg·s (Fig. 13a)."""
    if delay_s < 0:
        raise ValueError(f"delay must be non-negative, got {delay_s}")
    return report.total_cfp_kg * delay_s


def carbon_power_product(report: SystemCarbonReport, power_w: Optional[float] = None) -> float:
    """Carbon-power product in kg·W (Figs. 13b, 14a).

    ``power_w`` defaults to the operational model's total ON-power.
    """
    power = power_w if power_w is not None else report.operational.energy.total_power_w
    if power < 0:
        raise ValueError(f"power must be non-negative, got {power}")
    return report.total_cfp_kg * power


def carbon_area_product(report: SystemCarbonReport, area_mm2: Optional[float] = None) -> float:
    """Carbon-area product in kg·mm² (Figs. 13c, 14b).

    ``area_mm2`` defaults to the total manufactured silicon area.
    """
    area = area_mm2 if area_mm2 is not None else report.total_silicon_area_mm2
    if area < 0:
        raise ValueError(f"area must be non-negative, got {area}")
    return report.total_cfp_kg * area
