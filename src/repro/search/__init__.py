"""Goal-driven adaptive design-space exploration (:mod:`repro.search`).

Where :mod:`repro.sweep` *enumerates* a grid, this package *searches* one:
a :class:`SearchSpec` names the candidate space (an ordinary sweep grid —
any registered axis is searchable), weighted objectives, hard constraints
and an evaluation budget, and a pluggable :data:`Strategy` decides which
grid points to spend that budget on.  All evaluation routes through the
sweep engine (both backends, jobs>1, compile cache and resilience apply
unchanged), every evaluated point streams to the crash-safe result store
with a ``search_round`` column, and a killed search resumes from its store
without re-spending budget.

Entry points: :meth:`repro.api.Session.search`, the ``eco-chip search``
CLI subcommand, or :func:`run_search` directly.
"""

from repro.search.runner import RoundStats, SearchResult, run_search
from repro.search.space import GridSpace
from repro.search.spec import (
    METRIC_ALIASES,
    SearchConstraint,
    SearchObjective,
    SearchSpec,
)
from repro.search.strategies import (
    ParetoRefineStrategy,
    RandomStrategy,
    SearchContext,
    Strategy,
    SuccessiveHalvingStrategy,
    get_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "METRIC_ALIASES",
    "GridSpace",
    "ParetoRefineStrategy",
    "RandomStrategy",
    "RoundStats",
    "SearchConstraint",
    "SearchContext",
    "SearchObjective",
    "SearchResult",
    "SearchSpec",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "get_strategy",
    "register_strategy",
    "run_search",
    "strategy_names",
]
