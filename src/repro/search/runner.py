"""Drive a strategy against the sweep engine, crash-safely.

The runner owns the loop between a strategy's proposal generator and the
evaluation machinery: every batch routes through
:meth:`repro.sweep.engine.SweepEngine.run` — so jobs>1, the scalar/batch
backends, the compile cache and resilience policies all apply to searches
unchanged — and every record streams to the ordinary result store stamped
with a ``search_round`` column.

Resume is replay: because strategies are deterministic functions of
(seed, results so far), re-running a killed search proposes the same
batches in the same order, and any candidate already present in the store
is served from its stored row instead of re-evaluating.  The store a
resumed search leaves behind is byte-identical to the one an uninterrupted
run would have written, and budget already spent is never spent twice.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.search.space import GridSpace
from repro.search.spec import SearchSpec
from repro.search.strategies import SearchContext, get_strategy
from repro.sweep.store import open_store, records_by_scenario, repair_torn_tail

__all__ = ["RoundStats", "SearchResult", "run_search"]

PathLike = Union[str, Path]
Record = Dict[str, Any]


@dataclasses.dataclass(frozen=True)
class RoundStats:
    """One evaluated batch of the search trajectory.

    Attributes:
        round_index: The batch's ``search_round`` stamp (0-based).
        proposed: Candidates the strategy proposed for this round.
        evaluated: Candidates evaluated live through the engine.
        replayed: Candidates served from a resumed store instead.
        best_score: Best (lowest) weighted cost seen so far.
        best_index: Grid index holding ``best_score`` (``None`` while every
            record is infeasible).
        front_size: Pareto-front size after the round.
        front_entered: Members that joined the front this round.
        front_left: Members that dropped off the front this round.
    """

    round_index: int
    proposed: int
    evaluated: int
    replayed: int
    best_score: float
    best_index: Optional[int]
    front_size: int
    front_entered: int
    front_left: int


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Typed outcome of a goal-driven search.

    Attributes:
        spec: The executed :class:`SearchSpec`.
        best: Record of the lowest-weighted-cost feasible point (``None``
            when every evaluated point was infeasible).
        best_score: Weighted cost of ``best`` (``inf`` when infeasible).
        front: Records of the final Pareto front, by ascending grid index.
        rounds: Per-round trajectory (:class:`RoundStats`).
        evaluations: Distinct candidates evaluated (replays included).
        new_evaluations: Candidates evaluated live in *this* run (what a
            resume actually spent).
        grid_size: Size of the exhaustive grid the search drew from.
        budget: Effective evaluation budget (spec budget capped at the
            grid size).
        elapsed_s: Wall-clock runtime of this run.
        store_path: Result store the evaluations streamed to, if any.
        backend: Engine backend the search ran on.
        jobs: Engine worker-process count.
    """

    spec: SearchSpec
    best: Optional[Record]
    best_score: float
    front: Tuple[Record, ...]
    rounds: Tuple[RoundStats, ...]
    evaluations: int
    new_evaluations: int
    grid_size: int
    budget: int
    elapsed_s: float
    store_path: Optional[str] = None
    backend: str = "scalar"
    jobs: int = 1

    @property
    def evaluated_fraction(self) -> float:
        """Evaluations spent as a fraction of the exhaustive grid."""
        return self.evaluations / self.grid_size if self.grid_size else 0.0

    @property
    def best_label(self) -> Optional[str]:
        """Compact identity of the best point (nodes/packaging/… columns)."""
        if self.best is None:
            return None
        from repro.sweep.store import SweepRow

        return SweepRow(self.best).label


def run_search(
    spec: SearchSpec,
    engine: Any,
    *,
    out: Optional[PathLike] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SearchResult:
    """Execute ``spec`` on ``engine``; the library core behind
    :meth:`repro.api.Session.search` and ``eco-chip search``.

    Args:
        spec: The search specification.
        engine: A configured :class:`repro.sweep.engine.SweepEngine`.
        out: Stream every evaluated record to this JSONL/CSV store (with a
            ``search_round`` column).  Required for ``resume``.
        resume: Replay candidates already present in ``out`` (torn tail
            repaired first) instead of re-evaluating them, then continue
            the search where it was killed.
        progress: Optional ``(evaluations so far, budget)`` callback per
            round.

    Returns:
        A :class:`SearchResult`.
    """
    if resume and out is None:
        raise ValueError("resume=True needs an out file to resume from")
    space = GridSpace(spec.space)
    strategy = get_strategy(spec.strategy)
    context = SearchContext(spec, space)
    budget = min(spec.budget, space.size)

    stored: Dict[int, Record] = {}
    if resume:
        repair_torn_tail(out)
        stored = records_by_scenario(out)
    store = open_store(out, append=resume) if out is not None else None

    # On the single-process batch backend, mount one shared BatchEstimator
    # for the whole search so compiled templates stay warm across rounds
    # (a fresh engine.run per batch would otherwise recompile every round).
    restore_estimator = False
    if (
        engine.backend == "batch"
        and engine.jobs == 1
        and engine.batch_estimator is None
    ):
        from repro.fastpath import BatchEstimator

        engine.batch_estimator = BatchEstimator(
            config=engine.config,
            table=engine.table,
            include_cost=engine.include_cost,
            persistent_cache=engine.compile_cache,
        )
        restore_estimator = True

    rounds: List[RoundStats] = []
    new_evaluations = 0
    replayed_total = 0
    start = time.perf_counter()
    try:
        for proposed in strategy.batches(context):
            remaining = budget - len(context.records)
            if remaining <= 0:
                break
            batch = sorted(
                {index for index in proposed if index not in context.records}
            )[:remaining]
            if not batch:
                continue
            batch_records: Dict[int, Record] = {}
            fresh: List[int] = []
            for index in batch:
                record = stored.get(index)
                if record is not None:
                    batch_records[index] = record
                else:
                    fresh.append(index)
            if fresh:
                engine.run(
                    [space.scenario(index) for index in fresh],
                    store=store,
                    on_record=lambda record: batch_records.__setitem__(
                        int(record["scenario"]), record
                    ),
                    annotate={"search_round": context.round},
                )
            round_index = context.round
            entered, left = context.ingest(batch_records)
            new_evaluations += len(fresh)
            replayed_total += len(batch) - len(fresh)
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    proposed=len(batch),
                    evaluated=len(fresh),
                    replayed=len(batch) - len(fresh),
                    best_score=context.best_score,
                    best_index=context.best_index,
                    front_size=len(context.front),
                    front_entered=len(entered),
                    front_left=len(left),
                )
            )
            if progress is not None:
                progress(len(context.records), budget)
    finally:
        if restore_estimator:
            engine.batch_estimator = None
        if store is not None:
            store.close()

    best = (
        dict(context.records[context.best_index])
        if context.best_index is not None
        else None
    )
    front = tuple(dict(context.records[index]) for index in context.front)
    return SearchResult(
        spec=spec,
        best=best,
        best_score=context.best_score,
        front=front,
        rounds=tuple(rounds),
        evaluations=len(context.records),
        new_evaluations=new_evaluations,
        grid_size=space.size,
        budget=budget,
        elapsed_s=time.perf_counter() - start,
        store_path=str(Path(out)) if out is not None else None,
        backend=engine.backend,
        jobs=engine.jobs,
    )
