"""Typed goal-driven search specifications.

A :class:`SearchSpec` turns the paper's closing question — which
packaging/technology/operating point minimises carbon under cost and area
budgets — into a declarative object: a candidate *space* (an ordinary
:class:`~repro.sweep.spec.SweepSpec` grid, so every registered axis is
searchable), weighted/exponentiated *objectives* in the style of rad_gen's
``cost_fx_exps`` DSE configs, hard *constraints* (``area <= X mm^2``,
``cost <= $Y``), and a *budget* in evaluations.

The scalarisation is ``sum(weight * value ** exponent)`` over the
objectives; error records, missing metrics, NaNs and constraint violations
score ``inf`` (infeasible), so every ranking the strategies perform is a
total order with deterministic ``(score, index)`` tie-breaks.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.explorer import OBJECTIVES
from repro.resilience.records import is_error_record
from repro.search.strategies import strategy_names
from repro.sweep.spec import SweepSpec, load_spec_dict

__all__ = ["METRIC_ALIASES", "SearchConstraint", "SearchObjective", "SearchSpec"]

PathLike = Union[str, Path]

#: Shorthand metric spellings accepted in spec dictionaries, resolved to the
#: record-column names of :data:`repro.core.explorer.OBJECTIVES`.
METRIC_ALIASES: Dict[str, str] = {
    "cfp_total": "total_carbon_g",
    "carbon": "total_carbon_g",
    "cost": "cost_usd",
    "area": "silicon_area_mm2",
    "power": "power_w",
}


def resolve_metric(name: str) -> str:
    """Canonical record-metric name of ``name`` (alias-aware).

    Raises:
        KeyError: unknown metric, listing the known names and aliases.
    """
    key = str(name).strip()
    key = METRIC_ALIASES.get(key, key)
    if key not in OBJECTIVES:
        raise KeyError(
            f"unknown search metric {name!r}; known metrics: "
            f"{sorted(OBJECTIVES)}; aliases: {sorted(METRIC_ALIASES)}"
        )
    return key


def _require_finite(field: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{field} must be finite, got {value}")
    return value


@dataclasses.dataclass(frozen=True)
class SearchObjective:
    """One weighted objective term: ``weight * metric ** exponent``.

    The rad_gen ``cost_fx_exps`` idiom: exponents shape how sharply a
    metric dominates the scalarised cost, weights trade metrics off against
    each other.  Every metric is minimised.
    """

    metric: str
    weight: float = 1.0
    exponent: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "metric", resolve_metric(self.metric))
        object.__setattr__(self, "weight", _require_finite("weight", self.weight))
        object.__setattr__(self, "exponent", _require_finite("exponent", self.exponent))
        if self.weight <= 0:
            raise ValueError(f"objective weight must be positive, got {self.weight}")

    def term(self, value: float) -> float:
        """This objective's contribution for a metric ``value``."""
        return self.weight * value**self.exponent


@dataclasses.dataclass(frozen=True)
class SearchConstraint:
    """A hard bound on a record metric; violating points are infeasible."""

    metric: str
    maximum: Optional[float] = None
    minimum: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "metric", resolve_metric(self.metric))
        if self.maximum is None and self.minimum is None:
            raise ValueError(
                f"constraint on {self.metric!r} needs a maximum and/or minimum"
            )
        for field in ("maximum", "minimum"):
            value = getattr(self, field)
            if value is not None:
                object.__setattr__(self, field, float(value))

    def satisfied(self, value: float) -> bool:
        """Whether ``value`` honours the bound(s).  NaN never does."""
        if value != value:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        return True


def _parse_objectives(raw: Any) -> Tuple[SearchObjective, ...]:
    if raw is None:
        return (SearchObjective("total_carbon_g"),)
    if isinstance(raw, str):
        return (SearchObjective(raw),)
    objectives: List[SearchObjective] = []
    if isinstance(raw, Mapping):
        # {"total_carbon_g": 1.0} or {"cost_usd": {"weight": 2, "exponent": 1}}
        for metric, value in raw.items():
            if isinstance(value, Mapping):
                extra = set(value) - {"weight", "exponent"}
                if extra:
                    raise KeyError(
                        f"unknown objective keys {sorted(extra)} for metric "
                        f"{metric!r}; known keys: ['exponent', 'weight']"
                    )
                objectives.append(SearchObjective(metric, **dict(value)))
            else:
                objectives.append(SearchObjective(metric, weight=float(value)))
        return tuple(objectives)
    if isinstance(raw, Sequence):
        for entry in raw:
            if isinstance(entry, str):
                objectives.append(SearchObjective(entry))
            elif isinstance(entry, Mapping):
                if "metric" not in entry:
                    raise KeyError(
                        f"objective entry {entry!r} needs a 'metric' key"
                    )
                extra = set(entry) - {"metric", "weight", "exponent"}
                if extra:
                    raise KeyError(
                        f"unknown objective keys {sorted(extra)}; known keys: "
                        f"['exponent', 'metric', 'weight']"
                    )
                objectives.append(SearchObjective(**dict(entry)))
            elif isinstance(entry, SearchObjective):
                objectives.append(entry)
            else:
                raise TypeError(
                    f"objective entries must be metric names or dicts, got "
                    f"{entry!r}"
                )
        if not objectives:
            raise ValueError("objectives must not be empty")
        return tuple(objectives)
    raise TypeError(f"cannot parse objectives from {raw!r}")


def _parse_constraints(raw: Any) -> Tuple[SearchConstraint, ...]:
    if raw is None:
        return ()
    constraints: List[SearchConstraint] = []
    if isinstance(raw, Mapping):
        # {"silicon_area_mm2": 600.0} bounds the metric from above.
        for metric, bound in raw.items():
            if isinstance(bound, Mapping):
                extra = set(bound) - {"max", "min", "maximum", "minimum"}
                if extra:
                    raise KeyError(
                        f"unknown constraint keys {sorted(extra)} for metric "
                        f"{metric!r}; known keys: ['max', 'min']"
                    )
                constraints.append(
                    SearchConstraint(
                        metric,
                        maximum=bound.get("max", bound.get("maximum")),
                        minimum=bound.get("min", bound.get("minimum")),
                    )
                )
            else:
                constraints.append(SearchConstraint(metric, maximum=float(bound)))
        return tuple(constraints)
    if isinstance(raw, Sequence) and not isinstance(raw, str):
        for entry in raw:
            if isinstance(entry, SearchConstraint):
                constraints.append(entry)
            elif isinstance(entry, Mapping):
                if "metric" not in entry:
                    raise KeyError(
                        f"constraint entry {entry!r} needs a 'metric' key"
                    )
                extra = set(entry) - {"metric", "max", "min", "maximum", "minimum"}
                if extra:
                    raise KeyError(
                        f"unknown constraint keys {sorted(extra)}; known keys: "
                        f"['max', 'metric', 'min']"
                    )
                constraints.append(
                    SearchConstraint(
                        entry["metric"],
                        maximum=entry.get("max", entry.get("maximum")),
                        minimum=entry.get("min", entry.get("minimum")),
                    )
                )
            else:
                raise TypeError(
                    f"constraint entries must be dicts, got {entry!r}"
                )
        return tuple(constraints)
    raise TypeError(f"cannot parse constraints from {raw!r}")


#: Accepted top-level spec-dictionary keys.
_SPEC_KEYS = frozenset(
    {
        "name",
        "space",
        "objectives",
        "constraints",
        "budget",
        "strategy",
        "seed",
        "batch_size",
        "stall_rounds",
    }
)


@dataclasses.dataclass(frozen=True)
class SearchSpec:
    """A goal-driven search over a sweep grid.

    Attributes:
        space: The candidate grid (:class:`SweepSpec`; a spec mapping is
            accepted and converted).
        objectives: Weighted objective terms, scalarised by :meth:`score`.
        constraints: Hard metric bounds; violating points are infeasible.
        budget: Maximum distinct candidate evaluations (replayed rows of a
            resumed store count — resuming never re-spends budget).
        strategy: Registered strategy name
            (:func:`repro.search.strategies.strategy_names`).
        seed: Random seed; fixed seed means bit-identical candidate
            sequences and results on every backend and jobs count.
        batch_size: Candidates per evaluation batch (one engine run each).
        stall_rounds: Churn-free rounds after which ``pareto_refine``
            stops early.
        name: Recorded in summaries and logs.
    """

    space: SweepSpec
    objectives: Tuple[SearchObjective, ...] = (SearchObjective("total_carbon_g"),)
    constraints: Tuple[SearchConstraint, ...] = ()
    budget: int = 256
    strategy: str = "successive_halving"
    seed: int = 0
    batch_size: int = 32
    stall_rounds: int = 2
    name: str = "search"

    def __post_init__(self) -> None:
        if isinstance(self.space, Mapping):
            object.__setattr__(self, "space", SweepSpec.from_dict(self.space))
        if not isinstance(self.space, SweepSpec):
            raise TypeError(
                f"space must be a SweepSpec or a spec mapping, got "
                f"{type(self.space).__name__}"
            )
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        if not self.objectives:
            raise ValueError("at least one objective is required")
        for objective in self.objectives:
            if not isinstance(objective, SearchObjective):
                raise TypeError(f"not a SearchObjective: {objective!r}")
        for constraint in self.constraints:
            if not isinstance(constraint, SearchConstraint):
                raise TypeError(f"not a SearchConstraint: {constraint!r}")
        seen = [objective.metric for objective in self.objectives]
        if len(set(seen)) != len(seen):
            raise ValueError(f"duplicate objective metrics: {seen}")
        if int(self.budget) < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        object.__setattr__(self, "budget", int(self.budget))
        if int(self.batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        object.__setattr__(self, "batch_size", int(self.batch_size))
        if int(self.stall_rounds) < 1:
            raise ValueError(f"stall_rounds must be >= 1, got {self.stall_rounds}")
        object.__setattr__(self, "stall_rounds", int(self.stall_rounds))
        object.__setattr__(self, "seed", int(self.seed))
        if self.strategy not in strategy_names():
            raise ValueError(
                f"unknown search strategy {self.strategy!r}; registered "
                f"strategies: {strategy_names()}"
            )

    # -- scoring ----------------------------------------------------------------------
    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Objective metric names, in objective order."""
        return tuple(objective.metric for objective in self.objectives)

    def feasible(self, record: Mapping[str, Any]) -> bool:
        """Whether ``record`` is a successful evaluation inside every bound."""
        if is_error_record(record):
            return False
        for constraint in self.constraints:
            value = record.get(constraint.metric)
            if value is None or not constraint.satisfied(float(value)):
                return False
        return True

    def weighted_cost(self, record: Mapping[str, Any]) -> float:
        """``sum(weight * value ** exponent)`` over the objectives.

        ``inf`` for error records and for missing or NaN metric values —
        un-scorable points must never win a ranking.
        """
        if is_error_record(record):
            return float("inf")
        total = 0.0
        for objective in self.objectives:
            value = record.get(objective.metric)
            if value is None:
                return float("inf")
            value = float(value)
            if not math.isfinite(value):
                return float("inf")
            total += objective.term(value)
        return total

    def score(self, record: Mapping[str, Any]) -> float:
        """:meth:`weighted_cost`, with constraint violations scored ``inf``."""
        if not self.feasible(record):
            return float("inf")
        return self.weighted_cost(record)

    # -- construction -----------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, config: Mapping[str, Any], base_dir: Optional[PathLike] = None
    ) -> "SearchSpec":
        """Build a spec from a JSON/YAML-style dictionary.

        The ``space`` key holds an ordinary sweep-spec dictionary (any
        registered axis name is a valid key there); ``objectives`` accepts
        metric names, ``{metric: weight}`` mappings or
        ``[{"metric": ..., "weight": ..., "exponent": ...}]`` lists;
        ``constraints`` accepts ``{metric: max}`` mappings or
        ``[{"metric": ..., "max": ..., "min": ...}]`` lists.
        """
        unknown = sorted(set(config) - _SPEC_KEYS)
        if unknown:
            raise KeyError(
                f"unknown search-spec keys {unknown}; known keys: "
                f"{sorted(_SPEC_KEYS)}"
            )
        if "space" not in config:
            raise KeyError(
                "a search spec needs a 'space' key holding its sweep-spec grid"
            )
        space = config["space"]
        if isinstance(space, Mapping):
            space = SweepSpec.from_dict(space, base_dir=base_dir)
        return cls(
            space=space,
            objectives=_parse_objectives(config.get("objectives")),
            constraints=_parse_constraints(config.get("constraints")),
            budget=config.get("budget", 256),
            strategy=str(config.get("strategy", "successive_halving")),
            seed=config.get("seed", 0),
            batch_size=config.get("batch_size", 32),
            stall_rounds=config.get("stall_rounds", 2),
            name=str(config.get("name", "search")),
        )

    @classmethod
    def from_file(cls, path: PathLike) -> "SearchSpec":
        """Load a spec from a ``.json`` or YAML-ish ``.yaml``/``.yml`` file."""
        data, base_dir = load_spec_dict(path)
        return cls.from_dict(data, base_dir=base_dir)
