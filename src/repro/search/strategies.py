"""Pluggable search strategies and the context they observe.

A strategy is a *generator of candidate batches*: ``batches(context)``
yields lists of grid indices to evaluate next, and between yields the
runner feeds the results back through the shared :class:`SearchContext`.
Everything a strategy may base decisions on lives in that context — the
spec, the grid space, the evaluated records with their weighted costs, and
the current Pareto front — so a strategy's proposals are a pure function of
(seed, results so far).  That is what makes searches deterministic *and*
resumable: replaying the same results in the same order reproduces the
same proposals, whether the results come from live evaluation or from a
killed run's store.

Strategies must draw randomness only from ``random.Random(context.spec.seed)``
instances they create themselves, and must yield index batches in sorted
order; both are required for the bit-identical-across-backends guarantee.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.explorer import front_delta, pareto_front

__all__ = [
    "SearchContext",
    "Strategy",
    "ParetoRefineStrategy",
    "RandomStrategy",
    "SuccessiveHalvingStrategy",
    "get_strategy",
    "register_strategy",
    "strategy_names",
]


class _FrontPoint:
    """Minimal ``objective(name)`` adapter for :func:`pareto_front`."""

    __slots__ = ("index", "record")

    def __init__(self, index: int, record: Mapping[str, Any]):
        self.index = index
        self.record = record

    def objective(self, name: str) -> float:
        return float(self.record[name])


class SearchContext:
    """Deterministic shared state between the runner and a strategy.

    Attributes:
        spec: The :class:`~repro.search.spec.SearchSpec` being executed.
        space: The :class:`~repro.search.space.GridSpace` candidates come
            from.
        records: ``{grid index: record}`` of every evaluated candidate.
        scores: ``{grid index: weighted cost}``; ``inf`` marks error
            records, missing metrics and constraint violations.
        front: Sorted grid indices of the current Pareto front over the
            spec's objective metrics (feasible records only).
        round: Batches ingested so far (== the next batch's
            ``search_round`` stamp).
        best_index: Grid index of the lowest-cost feasible record (ties
            resolve to the smallest index), ``None`` until one exists.
        best_score: Weighted cost of ``best_index`` (``inf`` until one
            exists).
    """

    def __init__(self, spec: Any, space: Any):
        self.spec = spec
        self.space = space
        self.records: Dict[int, Mapping[str, Any]] = {}
        self.scores: Dict[int, float] = {}
        self.front: Tuple[int, ...] = ()
        self.round = 0
        self.best_index: Optional[int] = None
        self.best_score = float("inf")

    # -- queries strategies build proposals from --------------------------------------
    def unevaluated(self, indices: Sequence[int]) -> List[int]:
        """The subset of ``indices`` not evaluated yet, sorted and unique."""
        return sorted({index for index in indices if index not in self.records})

    def top_of(self, pool: Sequence[int], count: int) -> List[int]:
        """The ``count`` lowest-cost feasible members of ``pool``.

        Ordered (and tie-broken) by ``(weighted cost, grid index)``, so the
        ranking is identical on every backend and jobs count.  Infeasible
        members never rank.
        """
        ranked = sorted(
            (index for index in pool if self.scores.get(index, float("inf")) < float("inf")),
            key=lambda index: (self.scores[index], index),
        )
        return ranked[:count]

    # -- runner side ------------------------------------------------------------------
    def ingest(
        self, batch_records: Mapping[int, Mapping[str, Any]]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Absorb one evaluated batch; returns the front's ``(entered, left)``."""
        for index in sorted(batch_records):
            record = batch_records[index]
            score = self.spec.score(record)
            self.records[index] = record
            self.scores[index] = score
            if score < float("inf") and (
                score < self.best_score
                or (
                    score == self.best_score
                    and (self.best_index is None or index < self.best_index)
                )
            ):
                self.best_score = score
                self.best_index = index
        previous = self.front
        self.front = self._compute_front()
        self.round += 1
        return front_delta(previous, self.front)

    def _compute_front(self) -> Tuple[int, ...]:
        metrics = self.spec.metric_names
        points = [
            _FrontPoint(index, self.records[index])
            for index in sorted(self.records)
            if self.scores[index] < float("inf")
        ]
        if not points:
            return ()
        # Feasible records carry finite values for every objective metric
        # (score() already screened NaN/missing), so no NaN handling fires.
        return tuple(point.index for point in pareto_front(points, metrics))


def _chunks(indices: Sequence[int], size: int) -> Iterator[List[int]]:
    for start in range(0, len(indices), size):
        yield list(indices[start : start + size])


class RandomStrategy:
    """Seeded uniform sampling without replacement — the baseline.

    Draws ``min(budget, grid size)`` distinct indices up front from
    ``Random(seed)`` and yields them in draw order, batch by batch.
    """

    name = "random"

    def batches(self, context: SearchContext) -> Iterator[List[int]]:
        spec = context.spec
        rng = random.Random(spec.seed)
        count = min(spec.budget, context.space.size)
        order = rng.sample(range(context.space.size), count)
        for chunk in _chunks(order, spec.batch_size):
            yield sorted(chunk)


class SuccessiveHalvingStrategy:
    """Cheap-rung sampling, then promote survivors into their neighbourhoods.

    Rung 0 spends roughly half the budget on a seeded uniform sample of the
    grid.  Each later rung keeps the top ``1/eta`` of the previous pool by
    weighted cost and proposes the unevaluated numeric-axis neighbours of
    those survivors; the search descends toward the optimum while the pool
    shrinks geometrically.  Stops when no survivor has an unevaluated
    neighbour (the runner additionally enforces the budget).
    """

    name = "successive_halving"

    #: Pool shrink factor between rungs.
    eta = 4

    def batches(self, context: SearchContext) -> Iterator[List[int]]:
        spec, space = context.spec, context.space
        rng = random.Random(spec.seed)
        rung_size = min(space.size, max(spec.batch_size, spec.budget // 2))
        pool = sorted(rng.sample(range(space.size), rung_size))
        yield from _chunks(pool, spec.batch_size)
        while True:
            # The runner may have truncated the tail of a rung at the
            # budget; rank only what actually evaluated.
            evaluated_pool = [index for index in pool if index in context.records]
            survivors = context.top_of(
                evaluated_pool, max(1, len(evaluated_pool) // self.eta)
            )
            if not survivors:
                return
            proposals = context.unevaluated(
                [
                    neighbour
                    for survivor in survivors
                    for neighbour in space.neighbors(survivor)
                ]
            )
            if not proposals:
                return
            yield from _chunks(proposals, spec.batch_size)
            pool = survivors + [
                index for index in proposals if index in context.records
            ]


class ParetoRefineStrategy:
    """Zoom the numeric-axis neighbourhood of moving Pareto-front members.

    After a seeded exploration round (about half the budget), each round
    proposes the unevaluated neighbours of the front members that *entered*
    since the last round — batches are spent only where the front moved.
    When a round leaves the front unchanged the proposal ring widens by one
    step per stalled round (escape distance), and after ``stall_rounds``
    churn-free rounds the search stops early, returning the budget it did
    not need.
    """

    name = "pareto_refine"

    def batches(self, context: SearchContext) -> Iterator[List[int]]:
        spec, space = context.spec, context.space
        rng = random.Random(spec.seed)
        seed_size = min(space.size, max(spec.batch_size, spec.budget // 2))
        yield from _chunks(sorted(rng.sample(range(space.size), seed_size)), spec.batch_size)
        known: Tuple[int, ...] = ()
        stalled = 0
        while True:
            entered, left = front_delta(known, context.front)
            known = context.front
            if entered or left:
                stalled = 0
            else:
                stalled += 1
                if stalled >= spec.stall_rounds:
                    return
            seeds = entered if entered else known
            if not seeds:
                return
            proposals = context.unevaluated(space.ring(seeds, 1 + stalled))
            if not proposals:
                return
            yield from _chunks(proposals, spec.batch_size)


#: Registered strategy factories by name.
_STRATEGIES: Dict[str, Callable[[], Any]] = {
    RandomStrategy.name: RandomStrategy,
    SuccessiveHalvingStrategy.name: SuccessiveHalvingStrategy,
    ParetoRefineStrategy.name: ParetoRefineStrategy,
}

#: The protocol type, importable for annotations/registration.
Strategy = Any


def register_strategy(name: str, factory: Callable[[], Any]) -> None:
    """Register an out-of-tree strategy factory under ``name``.

    The factory must return an object with a ``batches(context)`` generator
    method honouring the determinism contract in the module docstring.
    Re-registering a name replaces the previous factory.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"strategy name must be a non-empty string, got {name!r}")
    _STRATEGIES[name] = factory


def get_strategy(name: str) -> Any:
    """Instantiate the named strategy.

    Raises:
        KeyError: unknown name, listing the registered strategies.
    """
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown search strategy {name!r}; registered strategies: "
            f"{strategy_names()}"
        )
    return factory()


def strategy_names() -> List[str]:
    """Sorted names of every registered strategy."""
    return sorted(_STRATEGIES)
