"""Lazy, index-addressable view of a sweep grid.

Adaptive search evaluates a *sparse* subset of an exhaustive grid, so it
must never materialise the grid the way :meth:`SweepSpec.expand` does.
:class:`GridSpace` gives every scenario of a :class:`SweepSpec` a stable
integer address — exactly the ``Scenario.index`` the expanded list would
assign — and decodes any address into its :class:`Scenario` on demand via
mixed-radix arithmetic over the spec's axes.

That identity is the whole design: because a search candidate's id *is* its
exhaustive-grid index, every evaluated point streams to the ordinary result
store under its ordinary ``scenario`` id, and the store's crash-resume
machinery (``completed_scenario_ids``, ``repair_torn_tail``) applies to
searches unchanged.

``neighbors`` defines the move set of the refinement strategies: one step
along each *numeric* axis (nodes, lifetimes, volumes, numeric override
axes), with steps taken in sorted-value order so "adjacent" means adjacent
on the number line, not adjacent in the spec's listing order.  Categorical
axes (packaging, carbon sources, explicit node configs, non-numeric
overrides) have no meaningful distance; their diversity comes from the
strategies' random seeding rounds instead.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sweep.spec import (
    BASE_DESIGN_DIR,
    BASE_TESTCASE,
    Scenario,
    SweepSpec,
    resolve_base,
)

__all__ = ["GridSpace"]


def _is_numeric(values: Sequence[Any]) -> bool:
    return all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in values
    )


@dataclasses.dataclass(frozen=True)
class _Digit:
    """One mixed-radix digit of a grid block.

    Attributes:
        kind: Scenario field the digit feeds (``"node"``, ``"node_config"``,
            ``"packaging"``, ``"override"``, ``"carbon_source"``,
            ``"lifetime"``, ``"volume"``).
        name: Human-readable axis name (the override axis name for
            ``"override"`` digits).
        values: Axis values in spec order — the order ``expand()`` iterates.
        numeric: Whether :meth:`GridSpace.neighbors` may step along it.
        sorted_order: Value indices in ascending value order (numeric only).
        rank: Inverse of ``sorted_order`` — value index to sorted position.
    """

    kind: str
    name: str
    values: Tuple[Any, ...]
    numeric: bool
    sorted_order: Tuple[int, ...] = ()
    rank: Tuple[int, ...] = ()

    @classmethod
    def build(cls, kind: str, name: str, values: Sequence[Any]) -> "_Digit":
        values = tuple(values)
        numeric = len(values) > 1 and _is_numeric(values)
        sorted_order: Tuple[int, ...] = ()
        rank: Tuple[int, ...] = ()
        if numeric:
            order = sorted(range(len(values)), key=lambda i: values[i])
            inverse = [0] * len(values)
            for position, value_index in enumerate(order):
                inverse[value_index] = position
            sorted_order = tuple(order)
            rank = tuple(inverse)
        return cls(
            kind=kind,
            name=name,
            values=values,
            numeric=numeric,
            sorted_order=sorted_order,
            rank=rank,
        )


@dataclasses.dataclass(frozen=True)
class _Block:
    """The contiguous index range of one base system's sub-grid."""

    base_kind: str
    base_ref: str
    offset: int
    size: int
    digits: Tuple[_Digit, ...]
    strides: Tuple[int, ...]


class GridSpace:
    """Index-addressable view of ``spec``'s scenario grid.

    ``space.scenario(i)`` equals ``spec.expand()[i]`` for every ``i`` in
    ``range(space.size)`` — same fields, same shared packaging/override
    objects per combination — without ever allocating the full list.  The
    digit order per base mirrors ``expand()``'s nested products exactly:
    node digits (one per chiplet, or one explicit-config digit), packaging,
    override axes (name-sorted, last varying fastest), carbon source,
    lifetime, volume.
    """

    def __init__(self, spec: SweepSpec):
        self.spec = spec
        self._blocks: List[_Block] = []
        self._offsets: List[int] = []
        # Shared per-combination override dicts, like expand(): scenarios of
        # one combo reference one object, so identity-keyed signature caches
        # downstream keep working.
        self._override_combos: Dict[Tuple[int, ...], Mapping[str, Any]] = {}
        self._override_names = [name for name, _ in spec.overrides]

        bases: List[Tuple[str, str]] = [(BASE_TESTCASE, t) for t in spec.testcases]
        bases += [(BASE_DESIGN_DIR, d) for d in spec.design_dirs]
        offset = 0
        for base_kind, base_ref in bases:
            digits: List[_Digit] = []
            if spec.node_configs or spec.nodes:
                system = resolve_base(base_kind, base_ref)
                if spec.node_configs:
                    for config in spec.node_configs:
                        if len(config) != system.chiplet_count:
                            raise ValueError(
                                f"node config {config} has {len(config)} entries "
                                f"but {base_ref!r} has {system.chiplet_count} "
                                f"chiplets"
                            )
                    digits.append(
                        _Digit.build("node_config", "node_configs", spec.node_configs)
                    )
                else:
                    # all_node_configurations == product(nodes, repeat=count)
                    # coerced to floats: one float-valued digit per chiplet,
                    # chiplet 0 most significant.
                    node_values = tuple(float(node) for node in spec.nodes)
                    for chiplet in range(system.chiplet_count):
                        digits.append(
                            _Digit.build("node", f"node[{chiplet}]", node_values)
                        )
            if spec.packaging:
                digits.append(_Digit.build("packaging", "packaging", spec.packaging))
            for name, values in spec.overrides:
                digits.append(_Digit.build("override", name, values))
            if spec.carbon_sources:
                digits.append(
                    _Digit.build("carbon_source", "carbon_sources", spec.carbon_sources)
                )
            if spec.lifetimes:
                digits.append(_Digit.build("lifetime", "lifetimes", spec.lifetimes))
            if spec.system_volumes:
                digits.append(
                    _Digit.build("volume", "system_volumes", spec.system_volumes)
                )

            size = 1
            for digit in digits:
                size *= len(digit.values)
            strides: List[int] = []
            stride = size
            for digit in digits:
                stride //= len(digit.values)
                strides.append(stride)
            self._blocks.append(
                _Block(
                    base_kind=base_kind,
                    base_ref=base_ref,
                    offset=offset,
                    size=size,
                    digits=tuple(digits),
                    strides=tuple(strides),
                )
            )
            self._offsets.append(offset)
            offset += size
        self.size = offset

    # -- decoding -------------------------------------------------------------------
    def _locate(self, index: int) -> Tuple[_Block, Tuple[int, ...]]:
        if not 0 <= index < self.size:
            raise IndexError(
                f"scenario index {index} out of range for a {self.size}-point grid"
            )
        block = self._blocks[bisect.bisect_right(self._offsets, index) - 1]
        remainder = index - block.offset
        value_indices = []
        for stride in block.strides:
            value_indices.append(remainder // stride)
            remainder %= stride
        return block, tuple(value_indices)

    def _override_combo(
        self, value_indices: Tuple[int, ...]
    ) -> Optional[Mapping[str, Any]]:
        if not self._override_names:
            return None
        combo = self._override_combos.get(value_indices)
        if combo is None:
            combo = {
                name: values[value_index]
                for (name, values), value_index in zip(
                    self.spec.overrides, value_indices
                )
            }
            self._override_combos[value_indices] = combo
        return combo

    def scenario(self, index: int) -> Scenario:
        """Decode one grid index into its :class:`Scenario`.

        Equal (field for field, shared objects included) to
        ``spec.expand()[index]``.
        """
        block, value_indices = self._locate(index)
        nodes: Optional[Tuple[float, ...]] = None
        node_parts: List[float] = []
        packaging: Optional[Mapping[str, Any]] = None
        fab_source: Optional[str] = None
        lifetime: Optional[float] = None
        volume: Optional[float] = None
        override_indices: List[int] = []
        for digit, value_index in zip(block.digits, value_indices):
            value = digit.values[value_index]
            if digit.kind == "node":
                node_parts.append(value)
            elif digit.kind == "node_config":
                nodes = value
            elif digit.kind == "packaging":
                packaging = value
            elif digit.kind == "override":
                override_indices.append(value_index)
            elif digit.kind == "carbon_source":
                fab_source = value
            elif digit.kind == "lifetime":
                lifetime = value
            elif digit.kind == "volume":
                volume = value
        if node_parts:
            nodes = tuple(node_parts)
        return Scenario(
            index=index,
            base_kind=block.base_kind,
            base_ref=block.base_ref,
            nodes=nodes,
            packaging=packaging,
            fab_source=fab_source,
            lifetime_years=lifetime,
            system_volume=volume,
            overrides=self._override_combo(tuple(override_indices)),
        )

    # -- the refinement move set ------------------------------------------------------
    def neighbors(self, index: int) -> List[int]:
        """Grid indices one numeric-axis step away from ``index``.

        One move per numeric digit and direction: the digit's value is
        replaced by the next value up or down in *sorted value order* while
        every other digit stays fixed.  The result is sorted and
        duplicate-free, so callers iterating it spend their evaluation
        budget deterministically.
        """
        block, value_indices = self._locate(index)
        found = set()
        for position, (digit, value_index) in enumerate(
            zip(block.digits, value_indices)
        ):
            if not digit.numeric:
                continue
            sorted_position = digit.rank[value_index]
            for step in (-1, 1):
                neighbour_position = sorted_position + step
                if 0 <= neighbour_position < len(digit.values):
                    neighbour_value_index = digit.sorted_order[neighbour_position]
                    found.add(
                        index
                        + (neighbour_value_index - value_index)
                        * block.strides[position]
                    )
        return sorted(found)

    def ring(self, seeds: Sequence[int], radius: int) -> List[int]:
        """All indices within ``radius`` numeric-axis steps of ``seeds``.

        Breadth-first over :meth:`neighbors`; the seeds themselves are
        excluded.  Refinement strategies widen the radius when the front
        stalls, trading locality for escape distance.
        """
        seen = set(seeds)
        frontier = sorted(seen)
        collected = set()
        for _ in range(max(0, radius)):
            next_frontier = []
            for member in frontier:
                for neighbour in self.neighbors(member):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        collected.add(neighbour)
                        next_frontier.append(neighbour)
            if not next_frontier:
                break
            frontier = sorted(next_frontier)
        return sorted(collected)
