"""Die-to-die PHY interface model for RDL-fanout and EMIB packages.

Section III-D(2): packages without an interposer NoC (RDL fanout and silicon
bridges) still pay a small per-chiplet overhead for the die-to-die PHY IP
(AIB/UCIe-style parallel interfaces) that drives signals across the package.
These interfaces are "typically designed as IPs and have small additional
areas when compared to the chiplets".  The model here charges each chiplet a
per-lane PHY area plus a fixed controller area, both scaled with the
chiplet's technology node, and a corresponding transfer energy used by the
operational model.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, NodeKey, TechnologyTable

#: Silicon area of one PHY data lane (driver + receiver + ESD) at 7 nm, mm².
_LANE_AREA_MM2_AT_7NM = 0.0015

#: Fixed controller / clocking area per PHY instance at 7 nm, mm².
_CONTROLLER_AREA_MM2_AT_7NM = 0.25

#: Energy of moving one bit across the package in picojoules (UCIe-class
#: standard package links are in the 0.5–1 pJ/bit range).
_ENERGY_PJ_PER_BIT = 0.7


@dataclasses.dataclass(frozen=True)
class PhyEstimate:
    """Per-chiplet PHY overhead.

    Attributes:
        node_nm: Node the PHY is implemented in (same as its chiplet).
        lanes: Number of data lanes.
        area_mm2: Added silicon area on the chiplet.
        energy_pj_per_bit: Transfer energy per bit across the package.
        bandwidth_gbps: Aggregate bandwidth assuming ``lane_rate_gbps``.
    """

    node_nm: float
    lanes: int
    area_mm2: float
    energy_pj_per_bit: float
    bandwidth_gbps: float


class PhyModel:
    """Die-to-die PHY area/energy estimator.

    Args:
        table: Technology table (for node feature sizes and densities).
        lane_rate_gbps: Per-lane signalling rate used for bandwidth
            reporting only.
    """

    def __init__(
        self,
        table: Optional[TechnologyTable] = None,
        lane_rate_gbps: float = 16.0,
    ):
        if lane_rate_gbps <= 0:
            raise ValueError(f"lane rate must be positive, got {lane_rate_gbps}")
        self.table = table if table is not None else DEFAULT_TECHNOLOGY_TABLE
        self.lane_rate_gbps = float(lane_rate_gbps)

    def _area_scale(self, node: NodeKey) -> float:
        """Area multiplier of ``node`` relative to the 7 nm calibration point.

        PHYs are mixed-signal blocks, so they scale with the analog density
        trend rather than the logic trend.
        """
        record = self.table.get(node)
        reference = self.table.get(7)
        return (
            reference.analog_density_mtr_per_mm2 / record.analog_density_mtr_per_mm2
        )

    def estimate(self, node: NodeKey, lanes: int = 64) -> PhyEstimate:
        """PHY overhead for one chiplet interface with ``lanes`` data lanes."""
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        record = self.table.get(node)
        scale = self._area_scale(node)
        area = (_CONTROLLER_AREA_MM2_AT_7NM + lanes * _LANE_AREA_MM2_AT_7NM) * scale
        return PhyEstimate(
            node_nm=record.feature_nm,
            lanes=lanes,
            area_mm2=area,
            energy_pj_per_bit=_ENERGY_PJ_PER_BIT,
            bandwidth_gbps=lanes * self.lane_rate_gbps,
        )

    def area_mm2(self, node: NodeKey, lanes: int = 64) -> float:
        """Convenience wrapper returning only the PHY area."""
        return self.estimate(node, lanes).area_mm2

    def average_power_w(
        self, node: NodeKey, lanes: int = 64, utilization: float = 0.2
    ) -> float:
        """Average transfer power of one PHY interface.

        ``utilization`` is the average fraction of the link bandwidth in use
        while the system is ON; die-to-die links rarely run saturated.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        estimate = self.estimate(node, lanes)
        bits_per_second = estimate.bandwidth_gbps * 1.0e9 * utilization
        return estimate.energy_pj_per_bit * 1.0e-12 * bits_per_second
