"""ORION-3.0-style NoC router area and power model.

ORION estimates router power from microarchitectural parameters by counting
the instances of its building blocks (input buffers, crossbar, allocators)
and applying per-instance energy models; Stow et al. model the network-on-
interposer router area from flit width, port count and bump pitch.  This
module reproduces both behaviours analytically:

* **Area** is derived from a transistor budget (SRAM buffer bits, crossbar
  datapath, allocation/control logic) converted to silicon area through the
  logic transistor density of the target node, plus a wire-dominated crossbar
  term that scales with the square of the flit width and the node's metal
  pitch.
* **Power** combines per-flit switching energy (buffer write + read, crossbar
  traversal, arbitration) with leakage proportional to area.

The absolute constants are calibrated so that a 5-port, 512-bit, 4-VC router
lands in the fraction-of-a-mm² range at 65 nm and tens of mW at realistic
injection rates — consistent with the "small and near-negligible compared to
the core chiplet areas" observation in Section V-B(1).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, NodeKey, TechnologyTable

#: Transistors per SRAM buffer bit (6T cell plus decode/precharge overhead).
_TRANSISTORS_PER_BUFFER_BIT = 10.0

#: Transistors per crossbar bit-slice per port pair (mux tree + drivers).
_TRANSISTORS_PER_XBAR_BIT = 8.0

#: Transistors of allocation / arbitration / flow-control logic per port.
_CONTROL_TRANSISTORS_PER_PORT = 30_000.0

#: Metal tracks per signal for the wire-dominated crossbar area term.
_TRACKS_PER_BIT = 3.0

#: Wire pitch in micrometres at 65 nm; scaled linearly with feature size.
_WIRE_PITCH_UM_AT_65NM = 0.20

#: Effective switched capacitance per buffered/transported bit, in
#: femtofarads, at 65 nm.  Scales with feature size.
_CAP_FF_PER_BIT_AT_65NM = 3.0


@dataclasses.dataclass(frozen=True)
class RouterSpec:
    """Microarchitectural description of one NoC router.

    Attributes:
        ports: Bidirectional port count (paper/Stow use 4–8 for NoI meshes).
        flit_width_bits: Flit width; the paper uses 512 bits.
        virtual_channels: Virtual channels per port.
        buffer_depth_flits: Buffer depth per virtual channel, in flits.
        clock_ghz: Router clock frequency.
    """

    ports: int = 5
    flit_width_bits: int = 512
    virtual_channels: int = 4
    buffer_depth_flits: int = 4
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.ports < 2:
            raise ValueError(f"a router needs at least 2 ports, got {self.ports}")
        if self.flit_width_bits <= 0:
            raise ValueError(f"flit width must be positive, got {self.flit_width_bits}")
        if self.virtual_channels < 1:
            raise ValueError(
                f"virtual channel count must be >= 1, got {self.virtual_channels}"
            )
        if self.buffer_depth_flits < 1:
            raise ValueError(
                f"buffer depth must be >= 1, got {self.buffer_depth_flits}"
            )
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")

    @property
    def buffer_bits(self) -> float:
        """Total storage bits across all input buffers."""
        return (
            float(self.ports)
            * self.virtual_channels
            * self.buffer_depth_flits
            * self.flit_width_bits
        )


@dataclasses.dataclass(frozen=True)
class RouterEstimate:
    """Area and power estimate for one router instance.

    Attributes:
        node_nm: Technology node of the implementation.
        area_mm2: Total silicon area.
        transistors: Transistor budget behind the logic area.
        dynamic_power_w: Switching power at the requested injection rate.
        leakage_power_w: Static power.
        total_power_w: Sum of dynamic and leakage power.
        energy_per_flit_nj: Energy of moving one flit through the router.
    """

    node_nm: float
    area_mm2: float
    transistors: float
    dynamic_power_w: float
    leakage_power_w: float
    total_power_w: float
    energy_per_flit_nj: float


class OrionRouterModel:
    """Analytical router area/power estimator.

    Args:
        table: Technology table supplying density, Vdd and leakage values.
    """

    def __init__(self, table: Optional[TechnologyTable] = None):
        self.table = table if table is not None else DEFAULT_TECHNOLOGY_TABLE

    # -- area ----------------------------------------------------------------
    def transistor_count(self, spec: RouterSpec) -> float:
        """Transistor budget of the router's logic and storage."""
        buffers = spec.buffer_bits * _TRANSISTORS_PER_BUFFER_BIT
        crossbar = spec.ports**2 * spec.flit_width_bits * _TRANSISTORS_PER_XBAR_BIT
        control = spec.ports * _CONTROL_TRANSISTORS_PER_PORT
        return buffers + crossbar + control

    def area_mm2(self, spec: RouterSpec, node: NodeKey) -> float:
        """Router silicon area at ``node`` (logic plus wire-dominated crossbar)."""
        record = self.table.get(node)
        logic_area = self.transistor_count(spec) / (
            record.logic_density_mtr_per_mm2 * 1.0e6
        )
        pitch_um = _WIRE_PITCH_UM_AT_65NM * record.feature_nm / 65.0
        xbar_side_mm = spec.flit_width_bits * _TRACKS_PER_BIT * pitch_um * 1.0e-3
        wire_area = xbar_side_mm**2
        return logic_area + wire_area

    # -- power ----------------------------------------------------------------
    def energy_per_flit_nj(self, spec: RouterSpec, node: NodeKey) -> float:
        """Energy of one flit traversal (buffer write + read + crossbar)."""
        record = self.table.get(node)
        cap_ff_per_bit = _CAP_FF_PER_BIT_AT_65NM * record.feature_nm / 65.0
        # Three switched stages: buffer write, buffer read, crossbar traversal.
        switched_bits = 3.0 * spec.flit_width_bits
        energy_j = switched_bits * cap_ff_per_bit * 1.0e-15 * record.vdd_v**2
        return energy_j * 1.0e9

    def estimate(
        self,
        spec: RouterSpec,
        node: NodeKey,
        injection_rate: float = 0.3,
    ) -> RouterEstimate:
        """Full area/power estimate.

        Args:
            spec: Router microarchitecture.
            node: Implementation technology node.
            injection_rate: Average fraction of cycles a flit traverses the
                router (0–1); drives dynamic power.
        """
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {injection_rate}")
        record = self.table.get(node)
        area = self.area_mm2(spec, node)
        transistors = self.transistor_count(spec)
        energy_nj = self.energy_per_flit_nj(spec, node)
        flits_per_second = injection_rate * spec.clock_ghz * 1.0e9
        dynamic_w = energy_nj * 1.0e-9 * flits_per_second
        leakage_w = record.leakage_a_per_mm2 * area * record.vdd_v
        return RouterEstimate(
            node_nm=record.feature_nm,
            area_mm2=area,
            transistors=transistors,
            dynamic_power_w=dynamic_w,
            leakage_power_w=leakage_w,
            total_power_w=dynamic_w + leakage_w,
            energy_per_flit_nj=energy_nj,
        )
