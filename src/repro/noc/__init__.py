"""Inter-die communication models (NoC routers and PHY interfaces).

The paper uses two third-party sources for inter-die communication overheads:
ORION 3.0 for router *power* and Stow et al. (SLIP 2019) for router *area*
on interposer-based systems.  Neither is a Python library, so this package
provides an analytical substitute with the same microarchitectural inputs
(port count, flit width, virtual channels, buffer depth, technology node) and
the same qualitative behaviour:

* router area and power grow with ports, flit width and buffering;
* implementing the router in an older node (active interposer) costs more
  area than implementing it inside the chiplet's advanced node (passive
  interposer);
* PHY interfaces for RDL/EMIB packages are small IPs added to each chiplet.
"""

from repro.noc.orion import OrionRouterModel, RouterEstimate, RouterSpec
from repro.noc.phy import PhyModel, PhyEstimate

__all__ = [
    "OrionRouterModel",
    "RouterEstimate",
    "RouterSpec",
    "PhyModel",
    "PhyEstimate",
]
