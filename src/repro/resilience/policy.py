"""Retry/backoff policies and the fault-containment configuration.

A sweep's failure behaviour is one immutable object:
:class:`ResiliencePolicy` bundles a per-scenario :class:`RetryPolicy`
(attempts, capped exponential backoff with *deterministic* jitter,
retryable-vs-fatal classification) with the containment mode
(``on_error``), the per-scenario soft timeout the parallel watchdog
enforces, and the pool-respawn budget.

Determinism is a design constraint, not an afterthought: backoff jitter
is derived from a seeded hash of ``(seed, scenario key, attempt)``, so
two runs of the same sweep with the same policy retry at identical
delays — the chaos test suite depends on this to reproduce failures
bit-for-bit.

This module imports nothing from the estimator stack, so policies are
cheap to construct and to ship to worker processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional, Tuple, Type


class TransientSweepError(RuntimeError):
    """A failure worth retrying (infrastructure flake, injected fault)."""


class FatalSweepError(RuntimeError):
    """A failure retrying cannot fix; never retried regardless of policy."""


class WorkerLostError(TransientSweepError):
    """A pool worker died or hung while evaluating the scenario."""

    sweep_error_code = "worker-lost"


class ScenarioTimeoutError(TransientSweepError):
    """The scenario's group exceeded its soft deadline."""

    sweep_error_code = "timeout"


#: Containment modes: record structured error rows, or re-raise (legacy).
ON_ERROR_MODES = ("record", "raise")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed scenario evaluation is retried.

    Attributes:
        max_attempts: Total attempts per scenario (``1`` = no retries).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier applied per further retry.
        backoff_max_s: Cap on the un-jittered delay.
        jitter: Maximum extra delay as a fraction of the base delay
            (``0.1`` = up to +10 %), derived deterministically from
            ``seed``/key/attempt — not from a live RNG.
        seed: Jitter seed; two runs with equal seeds back off identically.
        retryable: Extra exception types treated as transient.  When
            non-empty, *only* these (plus :class:`TransientSweepError`)
            are retried; when empty, everything non-fatal is.
        fatal: Exception types never retried (checked before
            ``retryable``; :class:`FatalSweepError` is always fatal).
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = ()
    fatal: Tuple[Type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def classify(self, exc: BaseException) -> bool:
        """True when ``exc`` is worth another attempt under this policy."""
        if isinstance(exc, FatalSweepError) or isinstance(exc, self.fatal):
            return False
        if isinstance(exc, TransientSweepError):
            return True
        if self.retryable:
            return isinstance(exc, self.retryable)
        return True

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying after failed attempt number ``attempt``.

        Capped exponential plus a deterministic jitter fraction hashed
        from ``(seed, key, attempt)`` — typically ``key`` is the scenario
        id, so each scenario jitters differently but reproducibly.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * fraction)


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-containment configuration of a sweep run.

    Attributes:
        retry: Per-scenario retry/backoff policy.
        on_error: ``"record"`` captures a raising scenario as a structured
            error record in the result store and continues; ``"raise"``
            propagates the exception (the legacy abort-the-sweep mode,
            after retries are exhausted).
        scenario_timeout_s: Soft per-scenario deadline.  Enforced by the
            parallel watchdog (``jobs > 1``): a scenario *group* whose
            wall-clock exceeds ``timeout x group size + grace`` has its
            pool declared hung, its in-flight groups requeued and the
            pool respawned.  Ignored on serial runs (nothing can
            interrupt an in-process evaluation safely).
        max_pool_respawns: How many times a dead/hung worker pool is
            rebuilt before the still-unevaluated scenarios are given up
            as ``worker-lost`` error records (or raised, per
            ``on_error``) — a crash-looping plugin degrades the sweep
            instead of wedging it forever.
        timeout_grace_s: Slack added to every group deadline to absorb
            scheduling and pickling overhead.
    """

    retry: RetryPolicy = RetryPolicy()
    on_error: str = "record"
    scenario_timeout_s: Optional[float] = None
    max_pool_respawns: int = 2
    timeout_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.scenario_timeout_s is not None and self.scenario_timeout_s <= 0:
            raise ValueError(
                f"scenario_timeout_s must be > 0, got {self.scenario_timeout_s}"
            )
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )
        if self.timeout_grace_s < 0:
            raise ValueError(
                f"timeout_grace_s must be >= 0, got {self.timeout_grace_s}"
            )
