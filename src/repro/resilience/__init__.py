"""``repro.resilience`` — fault containment for production-scale sweeps.

Three pieces, layered under :class:`repro.sweep.engine.SweepEngine` and
:mod:`repro.serve`:

* **Policies** (:mod:`repro.resilience.policy`): :class:`RetryPolicy`
  (attempts, capped exponential backoff, deterministic jitter,
  retryable-vs-fatal classification) and :class:`ResiliencePolicy`
  (containment mode, per-scenario soft timeout, pool-respawn budget).
* **Error records** (:mod:`repro.resilience.records`): a raising
  scenario becomes one structured row in the result store — scenario
  columns plus a canonical-JSON ``error`` payload — bit-identical across
  the scalar and batch backends.
* **Chaos** (:mod:`repro.resilience.chaos`): seeded deterministic fault
  injection (exceptions, delays, simulated worker death at configured
  scenario indices) so every failure path above is testable.
"""

from __future__ import annotations

from repro.resilience.chaos import ChaosPlan, Fault, InjectedFault
from repro.resilience.policy import (
    FatalSweepError,
    ResiliencePolicy,
    RetryPolicy,
    ScenarioTimeoutError,
    TransientSweepError,
    WorkerLostError,
)
from repro.resilience.records import (
    ERROR_KEY,
    error_code_of,
    error_digest,
    error_info,
    error_record,
    evaluate_contained,
    is_error_record,
)

__all__ = [
    "ChaosPlan",
    "ERROR_KEY",
    "Fault",
    "FatalSweepError",
    "InjectedFault",
    "ResiliencePolicy",
    "RetryPolicy",
    "ScenarioTimeoutError",
    "TransientSweepError",
    "WorkerLostError",
    "error_code_of",
    "error_digest",
    "error_info",
    "error_record",
    "evaluate_contained",
    "is_error_record",
]
