"""Seeded, deterministic fault injection for sweeps.

A :class:`ChaosPlan` declares exactly which scenario indices fail, how
(``raise`` an exception, ``delay`` the evaluation, or ``die`` — simulate
a worker crash), and how many times, so the chaos test suite can
reproduce every failure path bit-for-bit.  The plan is consulted by
:func:`repro.resilience.records.evaluate_contained` immediately before
each scenario evaluates, which means injected faults exercise the real
containment/retry/supervision machinery rather than a parallel test-only
path.

Fault accounting must survive process boundaries: a ``die`` fault kills
its worker, and the respawned pool must *not* re-fire it (that is what
makes "kill a worker once, finish byte-identical to a fault-free run" a
deterministic test).  Plans therefore claim firings through one-byte
appends to per-fault marker files under ``state_dir`` — ``O_APPEND``
writes are atomic, so concurrent workers cannot double-claim — and fall
back to in-memory counters when no ``state_dir`` is given (serial runs).
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.resilience.policy import TransientSweepError

#: Exit status a ``die`` fault terminates its worker process with.
_DIE_EXIT_STATUS = 87

#: Fault kinds a plan may inject.
FAULT_KINDS = ("raise", "delay", "die")


class InjectedFault(TransientSweepError):
    """The exception a ``raise`` (or in-process ``die``) fault throws."""

    sweep_error_code = "injected"


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected fault, bound to a scenario index.

    Attributes:
        scenario: Grid index of the scenario the fault fires on.
        kind: ``"raise"`` throws :class:`InjectedFault`; ``"delay"``
            sleeps ``seconds`` then evaluates normally (hung-worker
            simulation); ``"die"`` terminates the worker process
            (``os._exit``) — in a serial run, where killing the process
            would kill the sweep itself, it degrades to ``raise``.
        times: Firings before the fault disarms (use a large value for a
            persistent failure, ``1`` for fails-once-then-succeeds).
        message: Exception message of ``raise``/``die`` faults.
        seconds: Sleep duration of ``delay`` faults.
    """

    scenario: int
    kind: str = "raise"
    times: int = 1
    message: str = "injected fault"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A deterministic set of faults injected into one sweep run.

    Attributes:
        faults: The injected faults.
        state_dir: Directory for cross-process fire-marker files.
            Required for parallel sweeps (``jobs > 1``): workers are
            separate processes, and ``die`` faults destroy the process
            that fired them, so only filesystem markers keep the
            fired-count consistent.  Serial runs may omit it.
    """

    faults: Tuple[Fault, ...] = ()
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        # In-memory claim counters (serial fallback); attached via
        # object.__setattr__ because the dataclass is frozen.
        object.__setattr__(self, "_fired", {})
        if self.state_dir is not None:
            Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    def _marker_path(self, fault: Fault) -> Path:
        assert self.state_dir is not None
        return Path(self.state_dir) / (
            f"fault-{fault.scenario}-{fault.kind}.fired"
        )

    def _claim(self, fault: Fault) -> bool:
        """Atomically claim one firing; False once ``times`` is reached."""
        if self.state_dir is None:
            fired: Dict[Tuple[int, str], int] = self._fired  # type: ignore[attr-defined]
            key = (fault.scenario, fault.kind)
            count = fired.get(key, 0) + 1
            fired[key] = count
            return count <= fault.times
        # One byte per firing, O_APPEND-atomic: the file size *after* our
        # write is our claim number, unique even across racing workers.
        fd = os.open(
            self._marker_path(fault), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, b"x")
            claim = os.fstat(fd).st_size
        finally:
            os.close(fd)
        return claim <= fault.times

    def fire(
        self,
        scenario_index: int,
        in_worker: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Inject every armed fault bound to ``scenario_index``.

        Called by the containment loop immediately before the scenario
        evaluates.  ``delay`` faults sleep and return; ``raise`` faults
        throw :class:`InjectedFault`; ``die`` faults terminate the
        worker process (or throw, when there is no worker to kill).
        """
        for fault in self.faults:
            if fault.scenario != scenario_index:
                continue
            if not self._claim(fault):
                continue
            if fault.kind == "delay":
                sleep(fault.seconds)
            elif fault.kind == "die":
                if in_worker:
                    # Simulated crash: no cleanup, no exception — exactly
                    # what a segfaulting plugin looks like to the pool.
                    os._exit(_DIE_EXIT_STATUS)
                raise InjectedFault(f"{fault.message} (worker death, serial run)")
            else:
                raise InjectedFault(fault.message)

    def reset(self) -> None:
        """Re-arm every fault (delete markers / clear counters)."""
        self._fired.clear()  # type: ignore[attr-defined]
        if self.state_dir is not None:
            for fault in self.faults:
                try:
                    self._marker_path(fault).unlink()
                except FileNotFoundError:
                    pass
