"""Structured error records and the contained-evaluation loop.

A scenario whose estimator raises becomes one *error record* in the
result store instead of aborting the sweep: the scenario's own
parameter columns (:meth:`repro.sweep.spec.Scenario.to_record`) plus an
``"error"`` column holding canonical JSON — error code, exception class,
truncated message, a traceback digest and the attempt count.  Metric
columns are absent, which is how readers (Pareto, best/top-N, caching)
recognise and skip failed rows.

The ``error`` payload is rendered exactly the same way the existing
``overrides``/``packaging_params`` columns are (one canonical
``json.dumps(..., sort_keys=True)`` string), and the digest hashes only
:func:`traceback.format_exception_only` — the exception type and
message, *not* the stack — so the scalar and batch backends produce
bit-identical error records for the same failure, preserving the
repo-wide cross-backend parity invariant.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.resilience.policy import ResiliencePolicy

Record = Dict[str, Any]

#: Record column carrying the structured error payload.
ERROR_KEY = "error"

#: Characters of the exception message kept in the error payload.
_MESSAGE_LIMIT = 200

#: Hex characters of the sha256 traceback digest kept in the payload.
_DIGEST_LENGTH = 12


def error_code_of(exc: BaseException) -> str:
    """Short machine code classifying an evaluation failure.

    Exception classes may declare their own via a ``sweep_error_code``
    attribute (the chaos harness and the worker-supervision errors do);
    everything else is a generic ``evaluation-error``.
    """
    code = getattr(exc, "sweep_error_code", None)
    return str(code) if code else "evaluation-error"


def error_digest(exc: BaseException) -> str:
    """Stable digest of the failure identity (type + message only).

    Deliberately excludes the traceback *stack*: the scalar and batch
    backends reach the same failure through different call paths, and
    error records must stay bit-identical across backends.
    """
    summary = "".join(traceback.format_exception_only(type(exc), exc))
    return hashlib.sha256(summary.encode("utf-8")).hexdigest()[:_DIGEST_LENGTH]


def error_record(scenario: Any, exc: BaseException, attempts: int = 1) -> Record:
    """One structured error record for a scenario that failed to evaluate."""
    message = str(exc)
    if len(message) > _MESSAGE_LIMIT:
        message = message[: _MESSAGE_LIMIT - 3] + "..."
    record: Record = scenario.to_record()
    record[ERROR_KEY] = json.dumps(
        {
            "attempts": int(attempts),
            "code": error_code_of(exc),
            "digest": error_digest(exc),
            "exception": type(exc).__name__,
            "message": message,
        },
        sort_keys=True,
    )
    return record


def is_error_record(record: Mapping[str, Any]) -> bool:
    """True when ``record`` is a contained-failure row (no metrics)."""
    return bool(record.get(ERROR_KEY))


def error_info(record: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The decoded error payload of an error record (``None`` otherwise)."""
    payload = record.get(ERROR_KEY)
    if not payload:
        return None
    if isinstance(payload, Mapping):  # already decoded (in-memory use)
        return dict(payload)
    try:
        decoded = json.loads(payload)
    except (TypeError, ValueError):
        return None
    return decoded if isinstance(decoded, dict) else None


def evaluate_contained(
    evaluate: Callable[[Any], Record],
    scenario: Any,
    policy: ResiliencePolicy,
    chaos: Optional[Any] = None,
    in_worker: bool = False,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[Record, int]:
    """Evaluate one scenario under a resilience policy.

    Runs the retry loop around ``evaluate(scenario)`` — firing any
    chaos-plan faults for the scenario first, so injected failures pass
    through exactly the containment machinery real ones do — and returns
    ``(record, retries)``: either the evaluated record or, with
    ``on_error="record"``, a structured error record after the attempts
    are exhausted.  ``on_error="raise"`` re-raises the final failure.

    Args:
        evaluate: Backend evaluation callable (scalar evaluator or the
            batch estimator's single-scenario path).
        scenario: The scenario to evaluate.
        policy: Retry/containment configuration.
        chaos: Optional :class:`repro.resilience.chaos.ChaosPlan`.
        in_worker: True inside a pool worker process (lets ``die``
            faults terminate the worker instead of raising).
        sleep: Backoff sleeper (injectable for tests).
    """
    retry = policy.retry
    attempt = 0
    while True:
        attempt += 1
        try:
            if chaos is not None:
                chaos.fire(scenario.index, in_worker=in_worker, sleep=sleep)
            return evaluate(scenario), attempt - 1
        except Exception as exc:  # noqa: BLE001 - containment boundary
            if attempt < retry.max_attempts and retry.classify(exc):
                delay = retry.delay_s(attempt, key=str(scenario.index))
                if delay > 0:
                    sleep(delay)
                continue
            if policy.on_error == "raise":
                raise
            return error_record(scenario, exc, attempts=attempt), attempt - 1
