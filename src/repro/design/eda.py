"""EDA compute-time model (Eq. 13).

The paper calibrates the model with a commercial measurement: one synthesis,
place & route (SP&R) run of a 700,000-gate block in a 7 nm technology takes
about 24 CPU-hours, and SP&R effort extends linearly with gate count (the
GA102's 4.5 B gates give 1.5e5 CPU-hours).  Analysis (timing/power/IR sign-
off simulations) adds a fraction of an SP&R run per iteration, verification
dominates about 80% of the total product-development compute, and the whole
budget scales with the EDA-tool productivity of the node (mature nodes close
designs faster, Section III-E).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, NodeKey, TechnologyTable

#: Average transistors per logic gate used to convert transistor counts into
#: gate counts (the GA102's 28.3 B transistors -> ~4.5 B logic gates).
DEFAULT_TRANSISTORS_PER_GATE = 6.25

#: SP&R CPU-hours per gate before the EDA-productivity division, calibrated
#: so that 700 k gates at 7 nm (eta_EDA = 0.70) costs 24 CPU-hours.
_BASE_SPR_HOURS_PER_GATE = 24.0 * 0.70 / 700_000.0

#: Analysis (STA / power / IR sign-off) compute per iteration, as a fraction
#: of one SP&R run.
_ANALYSIS_FRACTION_OF_SPR = 0.2

#: Fraction of total product-development compute spent in verification
#: (the paper: "verification dominating 80% of the product development time").
_VERIFICATION_SHARE = 0.8

#: Default number of design iterations (Table I: Ndes = 100).
DEFAULT_DESIGN_ITERATIONS = 100


def gates_from_transistors(
    transistors: float, transistors_per_gate: float = DEFAULT_TRANSISTORS_PER_GATE
) -> float:
    """Convert a transistor count to an equivalent logic-gate count."""
    if transistors < 0:
        raise ValueError(f"transistor count must be non-negative, got {transistors}")
    if transistors_per_gate <= 0:
        raise ValueError(
            f"transistors per gate must be positive, got {transistors_per_gate}"
        )
    return transistors / transistors_per_gate


@dataclasses.dataclass(frozen=True)
class EdaTimeBreakdown:
    """Compute-time breakdown of designing one chiplet.

    All times are CPU-hours.

    Attributes:
        node_nm: Node the design targets.
        gates: Logic-gate count of the design.
        iterations: Number of SP&R/analysis iterations (``Ndes``).
        spr_hours_per_run: CPU-hours of a single SP&R run.
        analysis_hours_per_run: CPU-hours of a single analysis pass.
        implementation_hours: ``(tSP&R + tanalyze) * Ndes / eta_EDA``.
        verification_hours: ``tverif`` — sized so verification is 80% of the
            total design compute.
        total_hours: ``tdes,i`` of Eq. 13.
    """

    node_nm: float
    gates: float
    iterations: int
    spr_hours_per_run: float
    analysis_hours_per_run: float
    implementation_hours: float
    verification_hours: float
    total_hours: float


class SPRTimeModel:
    """Compute-time model for synthesis, place & route, analysis and verification.

    Args:
        table: Technology table supplying the per-node EDA productivity.
        analysis_fraction: Analysis compute per iteration as a fraction of
            one SP&R run.
        verification_share: Fraction of the total design compute spent in
            verification.
    """

    def __init__(
        self,
        table: Optional[TechnologyTable] = None,
        analysis_fraction: float = _ANALYSIS_FRACTION_OF_SPR,
        verification_share: float = _VERIFICATION_SHARE,
    ):
        if analysis_fraction < 0:
            raise ValueError(f"analysis fraction must be non-negative, got {analysis_fraction}")
        if not 0.0 <= verification_share < 1.0:
            raise ValueError(
                f"verification share must be in [0, 1), got {verification_share}"
            )
        self.table = table if table is not None else DEFAULT_TECHNOLOGY_TABLE
        self.analysis_fraction = float(analysis_fraction)
        self.verification_share = float(verification_share)

    # -- single-run times ---------------------------------------------------------
    def spr_hours(self, gates: float, node: NodeKey) -> float:
        """CPU-hours of one SP&R run of ``gates`` gates at ``node``."""
        if gates < 0:
            raise ValueError(f"gate count must be non-negative, got {gates}")
        record = self.table.get(node)
        return gates * _BASE_SPR_HOURS_PER_GATE / record.eda_productivity

    def analysis_hours(self, gates: float, node: NodeKey) -> float:
        """CPU-hours of one full analysis (sign-off simulation) pass."""
        return self.analysis_fraction * self.spr_hours(gates, node)

    # -- Eq. 13 --------------------------------------------------------------------
    def breakdown(
        self,
        gates: float,
        node: NodeKey,
        iterations: int = DEFAULT_DESIGN_ITERATIONS,
    ) -> EdaTimeBreakdown:
        """Full Eq. 13 breakdown for a design of ``gates`` gates at ``node``."""
        if iterations < 1:
            raise ValueError(f"iteration count must be >= 1, got {iterations}")
        record = self.table.get(node)
        spr = self.spr_hours(gates, node)
        analysis = self.analysis_hours(gates, node)
        implementation = (spr + analysis) * iterations
        # Verification is verification_share of the total:
        #   tverif = share / (1 - share) * implementation
        verification = (
            self.verification_share / (1.0 - self.verification_share) * implementation
        )
        return EdaTimeBreakdown(
            node_nm=record.feature_nm,
            gates=gates,
            iterations=iterations,
            spr_hours_per_run=spr,
            analysis_hours_per_run=analysis,
            implementation_hours=implementation,
            verification_hours=verification,
            total_hours=implementation + verification,
        )

    def design_hours(
        self,
        gates: float,
        node: NodeKey,
        iterations: int = DEFAULT_DESIGN_ITERATIONS,
    ) -> float:
        """``tdes,i`` — total design compute time in CPU-hours."""
        return self.breakdown(gates, node, iterations).total_hours
