"""Design carbon footprint and volume amortisation (Eq. 12).

``Cdes,i = tdes,i * Pdes * Cdes,src`` converts design compute time into
carbon; the system-level design footprint amortises each chiplet's design
over the number of chiplets manufactured (``NM_i``) and the inter-die
communication design effort over the number of systems (``NS``).  Chiplets
marked as *reused* (pre-designed, silicon-proven IP) contribute no design
carbon at all — the "reuse" lever of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.design.eda import (
    DEFAULT_DESIGN_ITERATIONS,
    DEFAULT_TRANSISTORS_PER_GATE,
    SPRTimeModel,
    gates_from_transistors,
)
from repro.technology.carbon_sources import CarbonSource, carbon_intensity
from repro.technology.nodes import DEFAULT_TECHNOLOGY_TABLE, NodeKey, TechnologyTable

SourceLike = Union[CarbonSource, str, float, int]

#: Default power of one design-compute CPU thread (Table I: Pdes = 10 W).
DEFAULT_DESIGN_POWER_W = 10.0

#: Gate count charged for designing the inter-die communication circuitry
#: (routers, NICs, PHY controllers) of one HI system.
DEFAULT_COMM_DESIGN_GATES = 2.0e6


@dataclasses.dataclass(frozen=True)
class ChipletDesignResult:
    """Design CFP of one chiplet, before and after amortisation.

    Attributes:
        name: Chiplet name.
        node_nm: Node the chiplet is designed in.
        gates: Logic-gate count.
        design_hours: ``tdes,i`` in CPU-hours.
        total_cfp_g: Un-amortised design footprint (one full design effort).
        manufactured_volume: ``NM_i`` used for the amortisation.
        amortised_cfp_g: Footprint charged to a single system.
        reused: True when the chiplet is a pre-designed IP (zero design CFP).
    """

    name: str
    node_nm: float
    gates: float
    design_hours: float
    total_cfp_g: float
    manufactured_volume: float
    amortised_cfp_g: float
    reused: bool


@dataclasses.dataclass(frozen=True)
class SystemDesignResult:
    """Design CFP of a whole system (Eq. 12).

    Attributes:
        chiplets: Per-chiplet results.
        comm_total_cfp_g: Un-amortised design footprint of the inter-die
            communication circuitry.
        comm_amortised_cfp_g: Communication design footprint charged to a
            single system (divided by ``NS``).
        total_amortised_cfp_g: ``Cdes`` — the value that enters ``Cemb``.
        total_unamortised_cfp_g: Sum of all design efforts without any
            volume amortisation (the "design once" cost).
    """

    chiplets: Tuple[ChipletDesignResult, ...]
    comm_total_cfp_g: float
    comm_amortised_cfp_g: float
    total_amortised_cfp_g: float
    total_unamortised_cfp_g: float


class DesignCarbonModel:
    """Evaluates Eq. 12 / Eq. 13 for a set of chiplets.

    Args:
        table: Technology table (for EDA productivity).
        design_power_w: Power of one CPU thread running EDA jobs (``Pdes``).
        design_carbon_source: Energy source of the design-compute
            infrastructure (``Cdes,src``).
        transistors_per_gate: Conversion factor from transistor counts.
        spr_model: Compute-time model; a default one is built over ``table``.
    """

    def __init__(
        self,
        table: Optional[TechnologyTable] = None,
        design_power_w: float = DEFAULT_DESIGN_POWER_W,
        design_carbon_source: SourceLike = CarbonSource.COAL,
        transistors_per_gate: float = DEFAULT_TRANSISTORS_PER_GATE,
        spr_model: Optional[SPRTimeModel] = None,
    ):
        if design_power_w <= 0:
            raise ValueError(f"design power must be positive, got {design_power_w}")
        if transistors_per_gate <= 0:
            raise ValueError(
                f"transistors per gate must be positive, got {transistors_per_gate}"
            )
        self.table = table if table is not None else DEFAULT_TECHNOLOGY_TABLE
        self.design_power_w = float(design_power_w)
        self.design_carbon_intensity_g_per_kwh = carbon_intensity(design_carbon_source)
        self.transistors_per_gate = float(transistors_per_gate)
        self.spr_model = spr_model if spr_model is not None else SPRTimeModel(table=self.table)

    # -- single-chiplet ----------------------------------------------------------
    def chiplet_design_cfp(
        self,
        transistors: float,
        node: NodeKey,
        iterations: int = DEFAULT_DESIGN_ITERATIONS,
        manufactured_volume: float = 1.0,
        name: str = "",
        reused: bool = False,
    ) -> ChipletDesignResult:
        """Design CFP of one chiplet with ``transistors`` devices at ``node``."""
        if manufactured_volume <= 0:
            raise ValueError(
                f"manufactured volume must be positive, got {manufactured_volume}"
            )
        record = self.table.get(node)
        gates = gates_from_transistors(transistors, self.transistors_per_gate)
        if reused:
            return ChipletDesignResult(
                name=name,
                node_nm=record.feature_nm,
                gates=gates,
                design_hours=0.0,
                total_cfp_g=0.0,
                manufactured_volume=manufactured_volume,
                amortised_cfp_g=0.0,
                reused=True,
            )
        hours = self.spr_model.design_hours(gates, node, iterations)
        energy_kwh = hours * self.design_power_w / 1000.0
        total_g = energy_kwh * self.design_carbon_intensity_g_per_kwh
        return ChipletDesignResult(
            name=name,
            node_nm=record.feature_nm,
            gates=gates,
            design_hours=hours,
            total_cfp_g=total_g,
            manufactured_volume=manufactured_volume,
            amortised_cfp_g=total_g / manufactured_volume,
            reused=False,
        )

    def single_spr_run_cfp_g(self, transistors: float, node: NodeKey) -> float:
        """CFP of a *single* SP&R run (the quantity plotted in Fig. 7(b))."""
        gates = gates_from_transistors(transistors, self.transistors_per_gate)
        hours = self.spr_model.spr_hours(gates, node)
        return hours * self.design_power_w / 1000.0 * self.design_carbon_intensity_g_per_kwh

    # -- system-level (Eq. 12) ------------------------------------------------------
    def system_design_cfp(
        self,
        chiplets: Sequence[Dict[str, object]],
        iterations: int = DEFAULT_DESIGN_ITERATIONS,
        system_volume: float = 1.0,
        comm_design_gates: float = DEFAULT_COMM_DESIGN_GATES,
        comm_node: NodeKey = 7,
        has_inter_die_comm: bool = True,
    ) -> SystemDesignResult:
        """Design CFP of a system of chiplets.

        Args:
            chiplets: Sequence of dictionaries with keys ``name``,
                ``transistors``, ``node``, ``manufactured_volume`` and
                optionally ``reused``.
            iterations: Design iterations per chiplet (``Ndes``).
            system_volume: Number of systems shipped (``NS``).
            comm_design_gates: Gate budget of the inter-die communication
                circuitry designed once per system family.
            comm_node: Node the communication circuitry is designed in.
            has_inter_die_comm: False for monolithic systems (no comm CFP).
        """
        if system_volume <= 0:
            raise ValueError(f"system volume must be positive, got {system_volume}")
        results = []
        for entry in chiplets:
            results.append(
                self.chiplet_design_cfp(
                    transistors=float(entry["transistors"]),
                    node=entry["node"],  # type: ignore[arg-type]
                    iterations=iterations,
                    manufactured_volume=float(entry.get("manufactured_volume", system_volume)),
                    name=str(entry.get("name", "")),
                    reused=bool(entry.get("reused", False)),
                )
            )

        comm_total = 0.0
        if has_inter_die_comm and comm_design_gates > 0:
            comm_hours = self.spr_model.design_hours(comm_design_gates, comm_node, iterations)
            comm_total = (
                comm_hours * self.design_power_w / 1000.0
                * self.design_carbon_intensity_g_per_kwh
            )
        comm_amortised = comm_total / system_volume

        total_amortised = sum(r.amortised_cfp_g for r in results) + comm_amortised
        total_unamortised = sum(r.total_cfp_g for r in results) + comm_total
        return SystemDesignResult(
            chiplets=tuple(results),
            comm_total_cfp_g=comm_total,
            comm_amortised_cfp_g=comm_amortised,
            total_amortised_cfp_g=total_amortised,
            total_unamortised_cfp_g=total_unamortised,
        )
