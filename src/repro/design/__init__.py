"""Design (EDA) carbon-footprint models.

Section III-E of the paper: the footprint of *designing* a chip — thousands
of CPU-hours of synthesis, place & route (SP&R), analysis and verification —
is significant and, unlike manufacturing, is amortised over the number of
chiplets manufactured (``NM_i``) and systems shipped (``NS``)::

    Cdes = sum_i Cdes,i / NM_i + Cdes,comm / NS                 (Eq. 12)
    Cdes,i = tdes,i * Pdes * Cdes,src
    tdes,i = tverif,i + (tSP&R,i + tanalyze,i) * Ndes / eta_EDA  (Eq. 13)

* :mod:`~repro.design.eda` models the compute time (calibrated to the
  paper's measurement of 24 CPU-hours per SP&R run of a 700 k-gate block at
  7 nm) and the EDA-productivity scaling across nodes.
* :mod:`~repro.design.design_cfp` turns compute time into carbon and
  performs the volume amortisation, including the reuse discount for
  pre-designed chiplets.
"""

from repro.design.design_cfp import (
    ChipletDesignResult,
    DesignCarbonModel,
    SystemDesignResult,
)
from repro.design.eda import (
    DEFAULT_TRANSISTORS_PER_GATE,
    EdaTimeBreakdown,
    SPRTimeModel,
    gates_from_transistors,
)

__all__ = [
    "ChipletDesignResult",
    "DesignCarbonModel",
    "SystemDesignResult",
    "DEFAULT_TRANSISTORS_PER_GATE",
    "EdaTimeBreakdown",
    "SPRTimeModel",
    "gates_from_transistors",
]
